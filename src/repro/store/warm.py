"""Process-shared warm-start spills of the search memo tables.

A *spill* is one JSON file holding the transposition table, goal-verdict
table, and heuristic estimate cache a finished (or budget-cut) search left
behind, in the value-level encoding of
:meth:`~repro.search.problem.MappingProblem.export_warm_tables`.  Another
process — a portfolio arm racing the same pair, a fanout worker sweeping a
size series, or simply the next CLI invocation — pre-seeds its problem
from the spill and skips re-deriving every cached successor list.

**Addressing.**  Spills live under ``<store>/warm/<signature>.json`` where
the *problem signature* (:func:`problem_signature`) hashes the pair
fingerprint together with the semantics-relevant config knobs
(operator families, symmetry breaking, pruning, depth cap) and the
declared correspondences.  Budget, deadline, and cache-capacity knobs are
deliberately excluded: they bound *how much* search runs, not what any
cached entry means, so a deadline-cut run can still warm an unbounded one.
The signature is algorithm- and heuristic-independent too — successor
lists and goal verdicts are properties of the problem, so an IDA* arm
warms a beam arm; only heuristic estimate entries are additionally gated
on the consuming heuristic's ``(name, k)``.

**Sharing.**  Writes merge with the existing file (union of tables, new
entries winning) and land atomically via temp file + ``os.replace``, so
concurrent workers strictly add warmth and readers never see a torn file.
A corrupt, truncated, or mismatched spill degrades to a cold start with a
``resilience.store_torn_spill`` counter — spills are disposable caches,
never sources of truth: everything loaded is re-validated structurally
(:meth:`~repro.search.problem.MappingProblem.preseed_warm_tables`) and
anything suspect is discarded wholesale.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from ..relational.fingerprint import pair_fingerprint
from ..resilience.runtime import resilience_warning, retry_call
from ..search.config import SearchConfig
from ..search.problem import MappingProblem
from ..semantics.correspondence import encode_correspondence
from ..serialize import json_dumps_compact, json_loads

#: bump when the spill layout changes incompatibly; old files degrade cold
SPILL_VERSION = 1

#: default bound on distinct states per exported spill (keeps files in the
#: low tens of MB even for budget-scale searches; most recent entries win)
DEFAULT_MAX_SPILL_STATES = 20_000

_TABLE_KEYS = ("relations", "states", "goals", "successors", "heuristics")


def config_signature(config: SearchConfig, correspondences=()) -> str:
    """Hash of the config knobs that change what cached entries *mean*."""
    payload = {
        "enabled_operators": sorted(config.enabled_operators),
        "break_symmetry": config.break_symmetry,
        "prune_targets": config.prune_targets,
        "max_depth": config.max_depth,
        "correspondences": sorted(
            encode_correspondence(corr) for corr in correspondences
        ),
    }
    return hashlib.sha256(
        ("tupelo-cfg-v1" + json_dumps_compact(payload)).encode("utf-8")
    ).hexdigest()


def problem_signature(problem: MappingProblem) -> str:
    """The spill address of one problem: pair content + semantics knobs."""
    h = hashlib.sha256(b"tupelo-spill-v1")
    h.update(pair_fingerprint(problem.source, problem.target).encode("utf-8"))
    h.update(
        config_signature(problem.config, problem.correspondences).encode(
            "utf-8"
        )
    )
    return h.hexdigest()


def _empty_tables() -> dict:
    return {
        "relations": [],
        "states": [],
        "goals": [],
        "successors": [],
        "heuristics": [],
    }


def merge_tables(base: dict, update: dict, max_states: int | None = None) -> dict:
    """Union of two spills' tables; *update* wins on key collisions.

    States are re-keyed by content (their relation-reference encoding), so
    spills written by different processes — whose index spaces are
    unrelated — merge correctly.  When the union would exceed
    *max_states*, the newer spill is returned unchanged: bounded freshness
    beats unbounded growth for a disposable cache.
    """
    relations: list = []
    rel_index: dict[str, int] = {}
    states: list[list[int]] = []
    state_index: dict[tuple[int, ...], int] = {}
    goals: dict[int, object] = {}
    successors: dict[tuple, list] = {}
    heuristics: dict[tuple, dict[int, object]] = {}

    def fold(tables: dict) -> None:
        rel_map: list[int] = []
        for rel in tables["relations"]:
            key = json_dumps_compact(rel)
            idx = rel_index.get(key)
            if idx is None:
                idx = rel_index[key] = len(relations)
                relations.append(rel)
            rel_map.append(idx)
        state_map: list[int] = []
        for refs in tables["states"]:
            mapped = tuple(rel_map[i] for i in refs)
            idx = state_index.get(mapped)
            if idx is None:
                idx = state_index[mapped] = len(states)
                states.append(list(mapped))
            state_map.append(idx)
        for sidx, verdict in tables["goals"]:
            goals[state_map[sidx]] = verdict
        for sidx, symkey, moves in tables["successors"]:
            key = (
                state_map[sidx],
                tuple(symkey) if symkey is not None else None,
            )
            successors[key] = [[text, state_map[c]] for text, c in moves]
        for entry in tables.get("heuristics", ()):
            bucket = heuristics.setdefault(
                (entry.get("name"), entry.get("k")), {}
            )
            for sidx, value in entry["entries"]:
                bucket[state_map[sidx]] = value

    fold(base)
    fold(update)
    if max_states is not None and len(states) > max_states:
        return update
    return {
        "relations": relations,
        "states": states,
        "goals": [[sidx, verdict] for sidx, verdict in goals.items()],
        "successors": [
            [sidx, list(symkey) if symkey is not None else None, moves]
            for (sidx, symkey), moves in successors.items()
        ],
        "heuristics": [
            {
                "name": name,
                "k": k,
                "entries": [[sidx, value] for sidx, value in bucket.items()],
            }
            for (name, k), bucket in heuristics.items()
        ],
    }


def read_spill(path: str | Path, signature: str) -> dict | None:
    """The tables of the spill at *path*, or ``None``.

    ``None`` covers both the benign case (no spill yet) and every corrupt
    one — torn writes, truncation, a different format version, a signature
    that does not match (the file was written for another problem).  The
    corrupt cases bump ``resilience.store_torn_spill``; the caller starts
    cold either way.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json_loads(
            retry_call(
                lambda: path.read_text(encoding="utf-8"),
                site="store.spill_read",
            )
        )
    except (OSError, ValueError) as exc:
        resilience_warning("store_torn_spill", f"{path}: {exc!r}")
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("kind") != "tupelo-warm-spill"
        or payload.get("version") != SPILL_VERSION
        or payload.get("problem") != signature
    ):
        resilience_warning("store_torn_spill", f"{path}: wrong shape/version")
        return None
    tables = payload.get("tables")
    if not isinstance(tables, dict) or not all(
        isinstance(tables.get(key), list) for key in _TABLE_KEYS
    ):
        resilience_warning("store_torn_spill", f"{path}: missing tables")
        return None
    return tables


def write_spill(
    path: str | Path,
    signature: str,
    tables: dict,
    max_states: int | None = DEFAULT_MAX_SPILL_STATES,
) -> bool:
    """Merge *tables* into the spill at *path* (atomic); True on success.

    An unreadable existing file is overwritten rather than merged — the
    new tables are good data and the old file was not.
    """
    path = Path(path)
    existing = read_spill(path, signature)
    if existing is not None:
        tables = merge_tables(existing, tables, max_states=max_states)
    payload = {
        "kind": "tupelo-warm-spill",
        "version": SPILL_VERSION,
        "problem": signature,
        "tables": tables,
    }
    text = json_dumps_compact(payload)

    def write() -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)

    try:
        retry_call(write, site="store.spill_write")
    except OSError as exc:
        resilience_warning("store_io_error", f"{path}: {exc!r}")
        return False
    return True
