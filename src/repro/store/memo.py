"""Disk-backed mapping memo: fingerprint -> previously discovered mapping.

The memo is an **append-only JSONL file** (via :mod:`repro.serialize`)
rather than sqlite: appends from concurrent processes interleave at line
granularity on every platform we target, a torn tail line is skipped
instead of poisoning the file, and the whole store stays greppable.  The
first line is a header stamping :data:`STORE_VERSION`; every later line is
one ``mapping`` entry keyed by the exact pair fingerprint
(:func:`repro.relational.fingerprint.pair_fingerprint`).  Later entries
for the same key win, so "update" is just another append and compaction
(:meth:`MappingMemo.gc`) is optional hygiene, not correctness.

**Nothing read from disk is trusted.**  A served expression is re-parsed
and re-verified against the *current* instance pair
(``expression.apply(source).contains(target)``) before it is returned —
this one check subsumes fingerprint collisions, stale entries from older
code, and hand-edited files.  Every degraded path (unparseable line,
wrong version, failed verification, I/O error) bumps a PR-5
``resilience.store_*`` counter and falls back to a cold search; the memo
never raises into a discovery.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..errors import TupeloError
from ..fira.expression import MappingExpression
from ..fira.parser import parse_expression
from ..relational.database import Database
from ..relational.fingerprint import pair_fingerprint, pair_shape_fingerprint
from ..resilience.runtime import resilience_warning, retry_call
from ..semantics.functions import FunctionRegistry, builtin_registry
from ..serialize import json_dumps_compact, json_loads

#: bump when the entry layout changes incompatibly; mismatched files are
#: treated as cold (never migrated in place, never an error)
STORE_VERSION = 1

#: default bound on distinct fingerprints kept across compactions
DEFAULT_MAX_ENTRIES = 1024

#: per fingerprint, how many request variants (algorithm/heuristic/k) are
#: kept by compaction — newest first
_VARIANTS_PER_KEY = 4


def _request_key(entry: Mapping) -> tuple:
    """The (algorithm, heuristic, k) variant an entry was discovered under."""
    k = entry.get("k")
    return (
        entry.get("algorithm"),
        entry.get("heuristic"),
        float(k) if isinstance(k, (int, float)) and not isinstance(k, bool) else None,
    )


class MappingMemo:
    """One append-only memo file mapping pair fingerprints to mappings.

    The in-memory index (`fingerprint -> newest-first entry list`) is
    rebuilt lazily whenever the file's ``(mtime_ns, size)`` stamp changes,
    so concurrent writers on the same path are picked up without any
    locking — the worst case is serving a verified-but-older entry.
    """

    def __init__(
        self, path: str | Path, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        self.path = Path(path)
        self.max_entries = max_entries
        #: fingerprint -> entries, newest first (recency = key insertion order)
        self._by_fp: dict[str, list[dict]] = {}
        self._stamp: tuple[int, int] | None = None
        #: lines the last load skipped as corrupt (surfaced by ``info``)
        self.corrupt_lines = 0
        #: whether the last load hit a version-mismatched header
        self.version_mismatch = False

    # -- loading ---------------------------------------------------------------

    def _stat_stamp(self) -> tuple[int, int] | None:
        try:
            st = self.path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def refresh(self, force: bool = False) -> None:
        """Reload the index if the file changed on disk (cheap stat probe)."""
        stamp = self._stat_stamp()
        if not force and stamp == self._stamp:
            return
        self._stamp = stamp
        self._by_fp = {}
        self.corrupt_lines = 0
        self.version_mismatch = False
        if stamp is None:
            return
        try:
            text = retry_call(
                lambda: self.path.read_text(encoding="utf-8"),
                site="store.memo_read",
            )
        except OSError as exc:
            resilience_warning("store_io_error", f"{self.path}: {exc!r}")
            return
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json_loads(line)
            except ValueError:
                self.corrupt_lines += 1
                resilience_warning(
                    "store_corrupt_entry", f"{self.path}:{line_no}"
                )
                continue
            if not isinstance(entry, dict):
                self.corrupt_lines += 1
                resilience_warning(
                    "store_corrupt_entry", f"{self.path}:{line_no}"
                )
                continue
            if entry.get("kind") == "header":
                if entry.get("version") != STORE_VERSION:
                    # A future (or ancient) format: serve nothing from it,
                    # but keep appends working — compaction rewrites the
                    # header and reclaims the file.
                    self.version_mismatch = True
                    self._by_fp = {}
                    resilience_warning(
                        "store_version_mismatch",
                        f"{self.path}: header version {entry.get('version')!r}",
                    )
                    return
                continue
            if (
                entry.get("kind") != "mapping"
                or not isinstance(entry.get("fingerprint"), str)
                or not isinstance(entry.get("expression"), str)
            ):
                self.corrupt_lines += 1
                resilience_warning(
                    "store_corrupt_entry", f"{self.path}:{line_no}"
                )
                continue
            fp = entry["fingerprint"]
            bucket = self._by_fp.get(fp)
            if bucket is None:
                self._by_fp[fp] = [entry]
            else:
                bucket.insert(0, entry)
            # recency for the LRU bound: newest-touched key moves last
            self._by_fp[fp] = self._by_fp.pop(fp)

    # -- writing ---------------------------------------------------------------

    def _header_line(self) -> str:
        return json_dumps_compact(
            {"kind": "header", "store": "tupelo-memo", "version": STORE_VERSION}
        )

    def _append(self, entry: dict) -> None:
        line = json_dumps_compact(entry)

        def write() -> None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            stamp = self._stat_stamp()
            with self.path.open("a", encoding="utf-8") as fh:
                if stamp is None or stamp[1] == 0:
                    fh.write(self._header_line() + "\n")
                fh.write(line + "\n")

        retry_call(write, site="store.memo_append")

    def record(
        self,
        source: Database,
        target: Database,
        *,
        expression: MappingExpression,
        algorithm: str,
        heuristic: str,
        k: float | None = None,
        signature: str = "",
        states_examined: int | None = None,
    ) -> dict:
        """Append one discovered mapping; returns the entry written.

        Compacts in place when the live index outgrows ``max_entries``
        (append-only files otherwise grow without bound under churn).
        """
        self.refresh()
        entry = {
            "kind": "mapping",
            "version": STORE_VERSION,
            "fingerprint": pair_fingerprint(source, target),
            "shape": pair_shape_fingerprint(source, target),
            "algorithm": algorithm,
            "heuristic": heuristic,
            "k": k,
            "signature": signature,
            "expression": str(expression),
            "ops": len(expression.operators),
        }
        if states_examined is not None:
            entry["states_examined"] = states_examined
        self._append(entry)
        fp = entry["fingerprint"]
        bucket = self._by_fp.pop(fp, [])
        bucket.insert(0, entry)
        self._by_fp[fp] = bucket
        self._stamp = self._stat_stamp()
        if len(self._by_fp) > self.max_entries:
            self.gc()
        return entry

    # -- serving ---------------------------------------------------------------

    def _candidates(
        self,
        fp: str,
        algorithm: str | None,
        heuristic: str | None,
        k: float | None,
    ) -> Iterator[dict]:
        """Entries for *fp*, exact request-variant matches first."""
        bucket = self._by_fp.get(fp)
        if not bucket:
            return
        want = (algorithm, heuristic, k if k is None else float(k))
        exact = [e for e in bucket if _request_key(e) == want]
        rest = [e for e in bucket if _request_key(e) != want]
        yield from exact
        yield from rest

    def serve(
        self,
        source: Database,
        target: Database,
        *,
        registry: FunctionRegistry | None = None,
        algorithm: str | None = None,
        heuristic: str | None = None,
        k: float | None = None,
        exact_only: bool = False,
    ) -> tuple[MappingExpression, dict] | None:
        """A stored mapping *verified against this very pair*, or ``None``.

        Entries recorded under the requested ``(algorithm, heuristic, k)``
        are preferred (and, when served, reproduce the cold search's result
        bit for bit — the memo stored exactly what that search found);
        with ``exact_only=False`` any other verified entry for the
        fingerprint is an acceptable fallback, since verification — not
        provenance — is what makes an answer correct.  Each candidate is
        parsed and applied; any failure (stale operator vocabulary, a
        fingerprint collision, hand-edited entries) degrades to the next
        candidate and ultimately to ``None``, never to an exception.
        """
        self.refresh()
        fp = pair_fingerprint(source, target)
        reg = registry if registry is not None else builtin_registry()
        for entry in self._candidates(fp, algorithm, heuristic, k):
            if exact_only and _request_key(entry) != (
                algorithm,
                heuristic,
                k if k is None else float(k),
            ):
                continue
            try:
                expression = parse_expression(entry["expression"])
                verified = expression.apply(source, reg).contains(target)
            except (TupeloError, ValueError, KeyError, TypeError) as exc:
                resilience_warning(
                    "store_stale_entry", f"{self.path}: {fp[:12]} {exc!r}"
                )
                continue
            if not verified:
                # Wrong answer for this pair: a hash collision or a stale
                # entry whose semantics drifted.  Either way: cold search.
                resilience_warning(
                    "store_stale_entry", f"{self.path}: {fp[:12]} unverified"
                )
                continue
            return expression, entry
        return None

    # -- maintenance -----------------------------------------------------------

    def gc(self, max_entries: int | None = None) -> dict:
        """Compact the file: newest entries per key, LRU-bounded keys.

        Rewrites atomically (temp file + ``os.replace``) so concurrent
        readers see either the old or the new file, never a torn one.
        Returns ``{"kept", "dropped", "bytes_before", "bytes_after"}``.
        """
        self.refresh(force=True)
        bound = self.max_entries if max_entries is None else max_entries
        stamp = self._stat_stamp()
        bytes_before = stamp[1] if stamp is not None else 0
        total = sum(len(bucket) for bucket in self._by_fp.values())

        # keys are in recency order (oldest first); keep the newest *bound*
        keys = list(self._by_fp)
        kept_keys = keys[-bound:] if bound >= 0 else keys
        lines = [self._header_line()]
        kept = 0
        for fp in kept_keys:
            for entry in self._by_fp[fp][:_VARIANTS_PER_KEY]:
                lines.append(json_dumps_compact(entry))
                kept += 1

        def rewrite() -> None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(
                f".{self.path.name}.{os.getpid()}.tmp"
            )
            tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
            os.replace(tmp, self.path)

        try:
            retry_call(rewrite, site="store.memo_gc")
        except OSError as exc:
            resilience_warning("store_io_error", f"{self.path}: gc {exc!r}")
            return {
                "kept": total,
                "dropped": 0,
                "bytes_before": bytes_before,
                "bytes_after": bytes_before,
            }
        self.refresh(force=True)
        stamp = self._stat_stamp()
        return {
            "kept": kept,
            "dropped": total - kept,
            "bytes_before": bytes_before,
            "bytes_after": stamp[1] if stamp is not None else 0,
        }

    def info(self) -> dict:
        """A JSON-ready snapshot for ``repro store info``."""
        self.refresh()
        stamp = self._stat_stamp()
        return {
            "path": str(self.path),
            "exists": stamp is not None,
            "bytes": stamp[1] if stamp is not None else 0,
            "version": STORE_VERSION,
            "fingerprints": len(self._by_fp),
            "entries": sum(len(b) for b in self._by_fp.values()),
            "corrupt_lines": self.corrupt_lines,
            "version_mismatch": self.version_mismatch,
            "max_entries": self.max_entries,
        }

    def fingerprints(self) -> Sequence[str]:
        """The indexed fingerprints, oldest-recency first (for tests)."""
        self.refresh()
        return tuple(self._by_fp)
