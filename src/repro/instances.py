"""Semi-automated critical-instance extraction (paper §2.2).

TUPELO's inputs are *critical instances*: small example databases that
illustrate the same information under the source and the target schema.
The paper envisions eliciting them through a GUI, but also notes that
"much of the process of generating critical instances can be
semi-automated using techniques developed for entity/duplicate
identification and record linkage" (citing Bilke & Naumann's
duplicate-based schema matching).

This module implements that semi-automation for the common case where the
two *full* databases share some entities: rows are compared by the overlap
of their rendered value sets (a Jaccard score — the standard record-linkage
similarity over opaque tuples), aligned greedily one-to-one, and the best
few alignments per relation pair are kept as the critical instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from .relational.database import Database
from .relational.relation import Relation, Row
from .relational.types import is_null, value_to_text


@dataclass(frozen=True)
class RowAlignment:
    """One aligned row pair across the two databases."""

    source_relation: str
    source_row: Row
    target_relation: str
    target_row: Row
    score: float

    def __str__(self) -> str:
        return (
            f"{self.source_relation} ~ {self.target_relation} "
            f"(score {self.score:.2f})"
        )


def row_value_texts(relation: Relation, row: Row) -> frozenset[str]:
    """The rendered non-NULL value set of a row (the linkage signature)."""
    return frozenset(
        value_to_text(value) for value in row if not is_null(value)
    )


def row_similarity(left: frozenset[str], right: frozenset[str]) -> float:
    """Jaccard similarity of two row signatures."""
    if not left and not right:
        return 0.0
    union = left | right
    return len(left & right) / len(union)


def align_rows(
    source: Database,
    target: Database,
    min_score: float = 0.2,
) -> list[RowAlignment]:
    """Greedy one-to-one alignment of rows across the two databases.

    All cross-relation row pairs are scored; pairs are accepted best-first,
    each row participating at most once.  Pairs below *min_score* are
    discarded.  Deterministic: ties break on relation/row order.
    """
    candidates: list[tuple[float, int, RowAlignment]] = []
    tick = 0
    for source_rel in source:
        source_rows = [
            (row, row_value_texts(source_rel, row))
            for row in source_rel.sorted_rows()
        ]
        for target_rel in target:
            for target_row in target_rel.sorted_rows():
                target_sig = row_value_texts(target_rel, target_row)
                for source_row, source_sig in source_rows:
                    score = row_similarity(source_sig, target_sig)
                    if score >= min_score:
                        tick += 1
                        candidates.append(
                            (
                                score,
                                -tick,
                                RowAlignment(
                                    source_rel.name,
                                    source_row,
                                    target_rel.name,
                                    target_row,
                                    score,
                                ),
                            )
                        )
    candidates.sort(key=lambda item: (-item[0], -item[1]))

    used_source: set[tuple[str, Row]] = set()
    used_target: set[tuple[str, Row]] = set()
    accepted: list[RowAlignment] = []
    for _score, _tick, alignment in candidates:
        source_key = (alignment.source_relation, alignment.source_row)
        target_key = (alignment.target_relation, alignment.target_row)
        if source_key in used_source or target_key in used_target:
            continue
        used_source.add(source_key)
        used_target.add(target_key)
        accepted.append(alignment)
    return accepted


def extract_critical_instances(
    source: Database,
    target: Database,
    per_relation: int = 2,
    min_score: float = 0.2,
) -> tuple[Database, Database]:
    """Build critical instances from the best-aligned rows.

    Keeps at most *per_relation* aligned rows per target relation (critical
    instances should be succinct — a couple of Rosetta-Stone rows per
    relation suffice for search), then assembles the selected rows back
    into a pair of small databases.

    Raises:
        ValueError: if no rows align above *min_score* (the databases share
            no recognisable entities, so no Rosetta Stone exists).
    """
    alignments = align_rows(source, target, min_score=min_score)
    kept: list[RowAlignment] = []
    per_target: dict[str, int] = {}
    for alignment in alignments:
        count = per_target.get(alignment.target_relation, 0)
        if count >= per_relation:
            continue
        per_target[alignment.target_relation] = count + 1
        kept.append(alignment)
    if not kept:
        raise ValueError(
            "no rows align across the databases; critical instances must "
            "illustrate shared information (the Rosetta Stone principle)"
        )

    source_rows: dict[str, set[Row]] = {}
    target_rows: dict[str, set[Row]] = {}
    for alignment in kept:
        source_rows.setdefault(alignment.source_relation, set()).add(
            alignment.source_row
        )
        target_rows.setdefault(alignment.target_relation, set()).add(
            alignment.target_row
        )

    def shrink(db: Database, selected: dict[str, set[Row]]) -> Database:
        return Database(
            db.relation(name).with_rows(rows)
            for name, rows in sorted(selected.items())
        )

    return shrink(source, source_rows), shrink(target, target_rows)
