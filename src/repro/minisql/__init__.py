"""Mini-SQL: parse and execute the SQL the TUPELO compiler emits.

This closes the interoperability loop the paper sketches in §2.2: mapping
expressions compile to SQL (:mod:`repro.fira.sqlcompile`) and this package
executes those scripts against in-memory relations, so the compilation can
be verified end-to-end — ``run_script(compile_expression(e, db), db)``
must contain ``e.apply(db)``.
"""

from .engine import MiniSqlEngine, SqlExecutionError, run_script
from .lexer import SqlSyntaxError, tokenize
from .parser import parse_script, parse_select

__all__ = [
    "MiniSqlEngine",
    "SqlExecutionError",
    "run_script",
    "SqlSyntaxError",
    "tokenize",
    "parse_script",
    "parse_select",
]
