"""Tokenizer for the mini-SQL dialect.

The dialect is exactly what :mod:`repro.fira.sqlcompile` and
:mod:`repro.relational.sql` emit: DDL (CREATE/DROP/ALTER), INSERT ...
VALUES, DELETE ... WHERE, and CREATE TABLE AS SELECT with CASE/CAST/
functions/GROUP BY/CROSS JOIN/VALUES/ROW_NUMBER.  Comments (``--``) run to
end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TupeloError


class SqlSyntaxError(TupeloError):
    """The mini-SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


#: token kinds
IDENT = "IDENT"          # bare identifier or keyword (upper-cased in .norm)
QIDENT = "QIDENT"        # "quoted identifier"
STRING = "STRING"        # 'string literal'
NUMBER = "NUMBER"        # integer or float literal
SYMBOL = "SYMBOL"        # punctuation / operators
END = "END"              # end of input


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    position: int

    @property
    def norm(self) -> str:
        """Case-normalised text (keywords compare upper-case)."""
        return self.text.upper() if self.kind == IDENT else self.text


_SYMBOLS = ("<>", "||", "(", ")", ",", ";", ".", "*", "=")

_BARE_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_BARE_BODY = _BARE_START | set("0123456789$")


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if char == '"':
            end = i + 1
            parts = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated quoted identifier", i)
                if text[end] == '"':
                    if end + 1 < length and text[end + 1] == '"':
                        parts.append('"')
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            yield Token(QIDENT, "".join(parts), i)
            i = end + 1
            continue
        if char == "'":
            end = i + 1
            parts = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", i)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            yield Token(STRING, "".join(parts), i)
            i = end + 1
            continue
        if char.isdigit() or (
            char == "-" and i + 1 < length and text[i + 1].isdigit()
        ):
            end = i + 1
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # a dot not followed by a digit is a qualifier separator
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            yield Token(NUMBER, text[i:end], i)
            i = end
            continue
        matched_symbol = None
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                matched_symbol = symbol
                break
        if matched_symbol is not None:
            yield Token(SYMBOL, matched_symbol, i)
            i += len(matched_symbol)
            continue
        if char in _BARE_START or char == "$":
            end = i + 1
            while end < length and text[end] in _BARE_BODY:
                end += 1
            yield Token(IDENT, text[i:end], i)
            i = end
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", i)
    yield Token(END, "", length)
