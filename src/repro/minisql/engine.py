"""Executor for the mini-SQL dialect.

:class:`MiniSqlEngine` holds a catalogue of relations and executes the
scripts produced by :func:`repro.fira.sqlcompile.compile_expression`,
:func:`repro.relational.sql.relation_to_sql`, and
:func:`repro.relational.sql.tnf_construction_sql`, so the SQL compilation
path can be *verified* end-to-end against the in-memory algebra (the
integration tests do exactly that).

Semantic notes (documented divergences from full SQL):

* tables have **set semantics** (duplicate rows collapse), matching the
  paper's relational model;
* comparisons involving NULL are false (two-valued logic is enough for the
  predicates the compiler emits — it always guards NULL explicitly);
* ``CAST(x AS TEXT)`` uses the library's canonical text rendering;
* ``ROW_NUMBER() OVER ()`` numbers rows in the relation's deterministic
  sorted order, so scripts are reproducible.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import TupeloError
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.types import NULL, Value, is_null, value_sort_key, value_to_text
from ..semantics.functions import FunctionRegistry, builtin_registry
from .lexer import SqlSyntaxError
from .nodes import (
    Aggregate,
    BoolOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Comparison,
    Concat,
    CreateTable,
    CreateTableAs,
    CrossJoin,
    Delete,
    DropColumn,
    DropTable,
    Expr,
    FromClause,
    FunctionCall,
    InsertValues,
    IsNull,
    Literal,
    NotOp,
    Query,
    RenameColumn,
    RenameTable,
    RowNumber,
    Select,
    Star,
    TableSource,
    UnionAll,
    ValuesSource,
)
from .parser import parse_script


class SqlExecutionError(TupeloError):
    """A statement was well-formed but could not be executed."""


class _Binding:
    """One source row: ordered (label, column, value) triples."""

    __slots__ = ("entries",)

    def __init__(self, entries: list[tuple[str, str, Value]]) -> None:
        self.entries = entries

    def lookup(self, name: str, qualifier: str | None) -> Value:
        matches = [
            value
            for label, column, value in self.entries
            if column == name and (qualifier is None or label == qualifier)
        ]
        if not matches:
            raise SqlExecutionError(
                f"unknown column {qualifier + '.' if qualifier else ''}{name}"
            )
        if len(matches) > 1 and qualifier is None:
            raise SqlExecutionError(f"ambiguous column {name!r}")
        return matches[0]

    def star(self, qualifier: str | None) -> list[tuple[str, Value]]:
        selected = [
            (column, value)
            for label, column, value in self.entries
            if qualifier is None or label == qualifier
        ]
        if not selected:
            raise SqlExecutionError(f"no columns for qualifier {qualifier!r}")
        return selected

    def joined(self, other: "_Binding") -> "_Binding":
        return _Binding(self.entries + other.entries)

    def sort_key(self):
        return tuple(
            (label, column, value_sort_key(value))
            for label, column, value in self.entries
        )


class MiniSqlEngine:
    """An in-memory executor over the library's relations.

    Args:
        database: initial catalogue contents (optional).
        registry: resolves scalar function calls (λ UDFs); defaults to the
            built-in semantic functions.
    """

    def __init__(
        self,
        database: Database | None = None,
        registry: FunctionRegistry | None = None,
    ) -> None:
        self._tables: dict[str, Relation] = {}
        if database is not None:
            for rel in database:
                self._tables[rel.name] = rel
        self._registry = registry if registry is not None else builtin_registry()

    # -- catalogue --------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The current catalogue as an immutable database."""
        return Database(self._tables.values())

    def table(self, name: str) -> Relation:
        """Fetch a table (raises :class:`SqlExecutionError` if absent)."""
        try:
            return self._tables[name]
        except KeyError:
            raise SqlExecutionError(f"no such table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- execution ----------------------------------------------------------------

    def execute(self, script: str) -> None:
        """Parse and execute a script (multiple ';'-separated statements)."""
        for statement in parse_script(script):
            self._execute_statement(statement)

    def _execute_statement(self, statement) -> None:
        if isinstance(statement, CreateTableAs):
            if statement.name in self._tables:
                raise SqlExecutionError(
                    f"table {statement.name!r} already exists"
                )
            attributes, rows = self._run_query(statement.select)
            self._tables[statement.name] = Relation(
                statement.name, attributes, rows
            )
        elif isinstance(statement, CreateTable):
            if statement.name in self._tables:
                raise SqlExecutionError(
                    f"table {statement.name!r} already exists"
                )
            self._tables[statement.name] = Relation(
                statement.name, [c.name for c in statement.columns], []
            )
        elif isinstance(statement, DropTable):
            self.table(statement.name)
            del self._tables[statement.name]
        elif isinstance(statement, RenameTable):
            rel = self.table(statement.old)
            if statement.new in self._tables:
                raise SqlExecutionError(
                    f"table {statement.new!r} already exists"
                )
            del self._tables[statement.old]
            self._tables[statement.new] = rel.renamed(statement.new)
        elif isinstance(statement, RenameColumn):
            rel = self.table(statement.table)
            self._tables[statement.table] = rel.rename_attribute(
                statement.old, statement.new
            )
        elif isinstance(statement, DropColumn):
            rel = self.table(statement.table)
            self._tables[statement.table] = rel.drop_attribute(statement.column)
        elif isinstance(statement, InsertValues):
            self._insert(statement)
        elif isinstance(statement, Delete):
            self._delete(statement)
        else:  # pragma: no cover - parser only builds the above
            raise SqlExecutionError(f"unsupported statement {statement!r}")

    def _insert(self, statement: InsertValues) -> None:
        rel = self.table(statement.table)
        if len(statement.columns) != len(statement.values):
            raise SqlExecutionError("INSERT arity mismatch")
        row = {attr: NULL for attr in rel.attributes}
        for column, value in zip(statement.columns, statement.values):
            if not rel.has_attribute(column):
                raise SqlExecutionError(
                    f"table {statement.table!r} has no column {column!r}"
                )
            row[column] = value
        new_rows = set(rel.rows)
        new_rows.add(tuple(row[attr] for attr in rel.attributes))
        self._tables[statement.table] = rel.with_rows(new_rows)

    def _delete(self, statement: Delete) -> None:
        rel = self.table(statement.table)
        if statement.where is None:
            self._tables[statement.table] = rel.with_rows([])
            return
        kept = []
        for row in rel.rows:
            binding = _Binding(
                [
                    (statement.table, attr, value)
                    for attr, value in zip(rel.attributes, row)
                ]
            )
            if not _truthy(self._eval(statement.where, binding, None)):
                kept.append(row)
        self._tables[statement.table] = rel.with_rows(kept)

    # -- query evaluation --------------------------------------------------------------

    def _run_query(self, query: Query) -> tuple[list[str], list[tuple[Value, ...]]]:
        if isinstance(query, UnionAll):
            attributes: list[str] | None = None
            rows: list[tuple[Value, ...]] = []
            for select in query.selects:
                attrs, part = self._run_select(select)
                if attributes is None:
                    attributes = attrs
                elif attrs != attributes:
                    raise SqlExecutionError(
                        "UNION ALL branches have different columns: "
                        f"{attributes} vs {attrs}"
                    )
                rows.extend(part)
            assert attributes is not None
            return attributes, rows
        return self._run_select(query)

    def _run_select(self, select: Select) -> tuple[list[str], list[tuple[Value, ...]]]:
        bindings = self._bindings(select.source)
        bindings.sort(key=_Binding.sort_key)  # deterministic ROW_NUMBER
        if select.where is not None:
            bindings = [
                b
                for b in bindings
                if _truthy(self._eval(select.where, b, None))
            ]
        if select.group_by:
            return self._run_grouped(select, bindings)

        attributes: list[str] | None = None
        rows: list[tuple[Value, ...]] = []
        for row_number, binding in enumerate(bindings, start=1):
            names, values = self._project(select.items, binding, row_number)
            if attributes is None:
                attributes = names
            rows.append(tuple(values))
        if attributes is None:
            # empty input: derive attribute names from a probe of the items
            attributes = self._projected_names(select.items, select.source)
        return attributes, rows

    def _run_grouped(
        self, select: Select, bindings: list[_Binding]
    ) -> tuple[list[str], list[tuple[Value, ...]]]:
        keys = select.group_by
        groups: dict[tuple, list[_Binding]] = {}
        for binding in bindings:
            key = tuple(
                value_sort_key(binding.lookup(k.name, k.qualifier)) for k in keys
            )
            groups.setdefault(key, []).append(binding)

        attributes: list[str] | None = None
        rows = []
        for _key in sorted(groups):
            group = groups[_key]
            names: list[str] = []
            values: list[Value] = []
            for item in select.items:
                if isinstance(item.expr, Star):
                    raise SqlExecutionError("SELECT * with GROUP BY")
                if isinstance(item.expr, Aggregate):
                    names.append(item.alias or item.expr.func.lower())
                    values.append(self._aggregate(item.expr, group))
                elif isinstance(item.expr, ColumnRef):
                    ref = item.expr
                    if not any(
                        k.name == ref.name and k.qualifier == ref.qualifier
                        for k in keys
                    ):
                        raise SqlExecutionError(
                            f"column {ref.name!r} not in GROUP BY"
                        )
                    names.append(item.alias or ref.name)
                    values.append(group[0].lookup(ref.name, ref.qualifier))
                else:
                    raise SqlExecutionError(
                        "GROUP BY select items must be keys or aggregates"
                    )
            if attributes is None:
                attributes = names
            rows.append(tuple(values))
        if attributes is None:
            attributes = [
                item.alias
                or (
                    item.expr.name
                    if isinstance(item.expr, ColumnRef)
                    else item.expr.func.lower()
                    if isinstance(item.expr, Aggregate)
                    else "?"
                )
                for item in select.items
            ]
        return attributes, rows

    def _aggregate(self, aggregate: Aggregate, group: list[_Binding]) -> Value:
        if aggregate.func == "COUNT":
            if isinstance(aggregate.arg, Star):
                return len(group)
            values = [
                self._eval(aggregate.arg, b, None)
                for b in group
            ]
            return sum(1 for v in values if not is_null(v))
        values = [
            self._eval(aggregate.arg, b, None)
            for b in group
        ]
        present = [v for v in values if not is_null(v)]
        if not present:
            return NULL
        ordered = sorted(present, key=value_sort_key)
        return ordered[-1] if aggregate.func == "MAX" else ordered[0]

    # -- FROM clause -------------------------------------------------------------------

    def _bindings(self, source: FromClause) -> list[_Binding]:
        if isinstance(source, TableSource):
            rel = self.table(source.name)
            label = source.alias or source.name
            return [
                _Binding(
                    [
                        (label, attr, value)
                        for attr, value in zip(rel.attributes, row)
                    ]
                )
                for row in rel.sorted_rows()
            ]
        if isinstance(source, ValuesSource):
            if any(len(row) != len(source.columns) for row in source.rows):
                raise SqlExecutionError("VALUES arity mismatch")
            return [
                _Binding(
                    [
                        (source.alias, column, value)
                        for column, value in zip(source.columns, row)
                    ]
                )
                for row in source.rows
            ]
        if isinstance(source, CrossJoin):
            left = self._bindings(source.left)
            right = self._bindings(source.right)
            return [l.joined(r) for l in left for r in right]
        raise SqlExecutionError(f"unsupported FROM clause {source!r}")

    # -- projection --------------------------------------------------------------------

    def _project(
        self, items: Sequence, binding: _Binding, row_number: int
    ) -> tuple[list[str], list[Value]]:
        names: list[str] = []
        values: list[Value] = []
        for i, item in enumerate(items):
            if isinstance(item.expr, Star):
                for column, value in binding.star(item.expr.qualifier):
                    names.append(column)
                    values.append(value)
                continue
            names.append(self._item_name(item, i))
            values.append(self._eval(item.expr, binding, row_number))
        return names, values

    @staticmethod
    def _item_name(item, index: int) -> str:
        if item.alias is not None:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"column{index + 1}"

    def _projected_names(self, items, source: FromClause) -> list[str]:
        names: list[str] = []
        for i, item in enumerate(items):
            if isinstance(item.expr, Star):
                names.extend(self._source_columns(source, item.expr.qualifier))
            else:
                names.append(self._item_name(item, i))
        return names

    def _source_columns(self, source: FromClause, qualifier: str | None) -> list[str]:
        if isinstance(source, TableSource):
            label = source.alias or source.name
            if qualifier in (None, label, source.name):
                return list(self.table(source.name).attributes)
            return []
        if isinstance(source, ValuesSource):
            if qualifier in (None, source.alias):
                return list(source.columns)
            return []
        if isinstance(source, CrossJoin):
            return self._source_columns(
                source.left, qualifier
            ) + self._source_columns(source.right, qualifier)
        return []

    # -- scalar evaluation ----------------------------------------------------------------

    def _eval(self, expr: Expr, binding: _Binding, row_number: int | None) -> Value:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return binding.lookup(expr.name, expr.qualifier)
        if isinstance(expr, Concat):
            return "".join(
                value_to_text(self._eval(part, binding, row_number))
                for part in expr.parts
            )
        if isinstance(expr, Cast):
            value = self._eval(expr.expr, binding, row_number)
            if expr.type_name == "TEXT":
                return NULL if is_null(value) else value_to_text(value)
            raise SqlExecutionError(f"unsupported CAST target {expr.type_name}")
        if isinstance(expr, CaseWhen):
            for condition, result in expr.whens:
                if _truthy(self._eval(condition, binding, row_number)):
                    return self._eval(result, binding, row_number)
            if expr.default is not None:
                return self._eval(expr.default, binding, row_number)
            return NULL
        if isinstance(expr, FunctionCall):
            fn = self._registry.get(expr.name)
            args = [self._eval(arg, binding, row_number) for arg in expr.args]
            return fn.apply(*args)
        if isinstance(expr, RowNumber):
            if row_number is None:
                raise SqlExecutionError("ROW_NUMBER() outside a select list")
            return row_number
        if isinstance(expr, Comparison):
            left = self._eval(expr.left, binding, row_number)
            right = self._eval(expr.right, binding, row_number)
            if is_null(left) or is_null(right):
                return False
            return (left == right) if expr.op == "=" else (left != right)
        if isinstance(expr, IsNull):
            value = self._eval(expr.expr, binding, row_number)
            return (not is_null(value)) if expr.negated else is_null(value)
        if isinstance(expr, BoolOp):
            results = (
                _truthy(self._eval(op, binding, row_number))
                for op in expr.operands
            )
            return any(results) if expr.op == "OR" else all(results)
        if isinstance(expr, NotOp):
            return not _truthy(self._eval(expr.operand, binding, row_number))
        if isinstance(expr, Aggregate):
            raise SqlExecutionError("aggregate outside GROUP BY")
        raise SqlExecutionError(f"unsupported expression {expr!r}")


def _truthy(value: Value) -> bool:
    return bool(value) and not is_null(value)


def run_script(
    script: str,
    database: Database | None = None,
    registry: FunctionRegistry | None = None,
) -> Database:
    """Convenience: execute *script* against *database*, return the result."""
    engine = MiniSqlEngine(database, registry)
    engine.execute(script)
    return engine.database
