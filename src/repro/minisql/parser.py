"""Recursive-descent parser for the mini-SQL dialect."""

from __future__ import annotations

from ..relational.types import NULL, Value
from .lexer import END, IDENT, NUMBER, QIDENT, STRING, SYMBOL, SqlSyntaxError, Token, tokenize
from .nodes import (
    Aggregate,
    BoolOp,
    CaseWhen,
    Cast,
    ColumnDef,
    ColumnRef,
    Comparison,
    Concat,
    CreateTable,
    CreateTableAs,
    CrossJoin,
    Delete,
    DropColumn,
    DropTable,
    Expr,
    FromClause,
    FunctionCall,
    InsertValues,
    IsNull,
    Literal,
    NotOp,
    Query,
    RenameColumn,
    RenameTable,
    RowNumber,
    Select,
    SelectItem,
    Star,
    Statement,
    TableSource,
    UnionAll,
    ValuesSource,
)

_AGGREGATES = {"MAX", "MIN", "COUNT"}


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != END:
            self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        return self._current.kind == IDENT and self._current.norm in keywords

    def _accept_keyword(self, keyword: str) -> bool:
        if self._check_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, got {self._current.text!r}",
                self._current.position,
            )

    def _accept_symbol(self, symbol: str) -> bool:
        if self._current.kind == SYMBOL and self._current.text == symbol:
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, got {self._current.text!r}",
                self._current.position,
            )

    def _expect_name(self) -> str:
        token = self._current
        if token.kind in (IDENT, QIDENT):
            self._advance()
            return token.text
        raise SqlSyntaxError(
            f"expected identifier, got {token.text!r}", token.position
        )

    # -- statements ------------------------------------------------------------

    def parse_script(self) -> list[Statement]:
        statements: list[Statement] = []
        while self._current.kind != END:
            if self._accept_symbol(";"):
                continue
            statements.append(self._statement())
            if self._current.kind != END:
                self._expect_symbol(";")
        return statements

    def _statement(self) -> Statement:
        if self._accept_keyword("CREATE"):
            self._expect_keyword("TABLE")
            name = self._expect_name()
            if self._accept_keyword("AS"):
                return CreateTableAs(name, self._query())
            self._expect_symbol("(")
            columns = [self._column_def()]
            while self._accept_symbol(","):
                columns.append(self._column_def())
            self._expect_symbol(")")
            return CreateTable(name, tuple(columns))
        if self._accept_keyword("DROP"):
            self._expect_keyword("TABLE")
            return DropTable(self._expect_name())
        if self._accept_keyword("ALTER"):
            self._expect_keyword("TABLE")
            table = self._expect_name()
            if self._accept_keyword("RENAME"):
                if self._accept_keyword("TO"):
                    return RenameTable(table, self._expect_name())
                self._expect_keyword("COLUMN")
                old = self._expect_name()
                self._expect_keyword("TO")
                return RenameColumn(table, old, self._expect_name())
            self._expect_keyword("DROP")
            self._expect_keyword("COLUMN")
            return DropColumn(table, self._expect_name())
        if self._accept_keyword("INSERT"):
            self._expect_keyword("INTO")
            table = self._expect_name()
            self._expect_symbol("(")
            columns = [self._expect_name()]
            while self._accept_symbol(","):
                columns.append(self._expect_name())
            self._expect_symbol(")")
            self._expect_keyword("VALUES")
            self._expect_symbol("(")
            values = [self._literal_value()]
            while self._accept_symbol(","):
                values.append(self._literal_value())
            self._expect_symbol(")")
            return InsertValues(table, tuple(columns), tuple(values))
        if self._accept_keyword("DELETE"):
            self._expect_keyword("FROM")
            table = self._expect_name()
            where = self._bool_expr() if self._accept_keyword("WHERE") else None
            return Delete(table, where)
        raise SqlSyntaxError(
            f"unsupported statement starting with {self._current.text!r}",
            self._current.position,
        )

    def _column_def(self) -> ColumnDef:
        name = self._expect_name()
        type_parts = [self._expect_name()]
        # multi-word types (DOUBLE PRECISION)
        while self._current.kind == IDENT and self._current.norm == "PRECISION":
            type_parts.append(self._advance().text)
        return ColumnDef(name, " ".join(type_parts).upper())

    # -- SELECT -------------------------------------------------------------------

    def _query(self) -> Query:
        selects = [self._select()]
        while self._check_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            selects.append(self._select())
        if len(selects) == 1:
            return selects[0]
        return UnionAll(tuple(selects))

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        source = self._from_clause()
        where = self._bool_expr() if self._accept_keyword("WHERE") else None
        group_by: list[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self._accept_symbol(","):
                group_by.append(self._column_ref())
        return Select(tuple(items), source, where, tuple(group_by))

    def _select_item(self) -> SelectItem:
        star = self._try_star()
        if star is not None:
            return SelectItem(star)
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        return SelectItem(expr, alias)

    def _try_star(self) -> Star | None:
        if self._accept_symbol("*"):
            return Star()
        if self._current.kind in (IDENT, QIDENT):
            after = self._tokens[self._index + 1 :][:2]
            if (
                len(after) == 2
                and after[0].kind == SYMBOL
                and after[0].text == "."
                and after[1].kind == SYMBOL
                and after[1].text == "*"
            ):
                qualifier = self._advance().text
                self._advance()  # .
                self._advance()  # *
                return Star(qualifier)
        return None

    def _from_clause(self) -> FromClause:
        source: FromClause = self._from_atom()
        while self._check_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            source = CrossJoin(source, self._from_atom())
        return source

    def _from_atom(self) -> FromClause:
        if self._accept_symbol("("):
            self._expect_keyword("VALUES")
            rows = [self._values_row()]
            while self._accept_symbol(","):
                rows.append(self._values_row())
            self._expect_symbol(")")
            self._expect_keyword("AS")
            alias = self._expect_name()
            self._expect_symbol("(")
            columns = [self._expect_name()]
            while self._accept_symbol(","):
                columns.append(self._expect_name())
            self._expect_symbol(")")
            return ValuesSource(tuple(rows), alias, tuple(columns))
        name = self._expect_name()
        alias = None
        if self._current.kind in (IDENT, QIDENT) and not self._check_keyword(
            "CROSS", "WHERE", "GROUP", "JOIN", "UNION", "ORDER", "AS", "ON"
        ):
            alias = self._advance().text
        return TableSource(name, alias)

    def _values_row(self) -> tuple[Value, ...]:
        self._expect_symbol("(")
        values = [self._literal_value()]
        while self._accept_symbol(","):
            values.append(self._literal_value())
        self._expect_symbol(")")
        return tuple(values)

    # -- boolean expressions ----------------------------------------------------------

    def _bool_expr(self) -> Expr:
        operands = [self._bool_and()]
        while self._accept_keyword("OR"):
            operands.append(self._bool_and())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("OR", tuple(operands))

    def _bool_and(self) -> Expr:
        operands = [self._bool_not()]
        while self._accept_keyword("AND"):
            operands.append(self._bool_not())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("AND", tuple(operands))

    def _bool_not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return NotOp(self._bool_not())
        return self._predicate()

    def _predicate(self) -> Expr:
        if self._accept_symbol("("):
            inner = self._bool_expr()
            self._expect_symbol(")")
            return inner
        left = self._expr()
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated)
        for op in ("=", "<>"):
            if self._accept_symbol(op):
                return Comparison(op, left, self._expr())
        raise SqlSyntaxError(
            f"expected predicate operator, got {self._current.text!r}",
            self._current.position,
        )

    # -- value expressions --------------------------------------------------------------

    def _expr(self) -> Expr:
        parts = [self._primary()]
        while self._accept_symbol("||"):
            parts.append(self._primary())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _primary(self) -> Expr:
        token = self._current
        if token.kind == STRING:
            self._advance()
            return Literal(token.text)
        if token.kind == NUMBER:
            self._advance()
            return Literal(self._number(token.text))
        if self._accept_symbol("("):
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if token.kind == IDENT:
            norm = token.norm
            if norm == "NULL":
                self._advance()
                return Literal(NULL)
            if norm in ("TRUE", "FALSE"):
                self._advance()
                return Literal(norm == "TRUE")
            if norm == "CASE":
                return self._case()
            if norm == "CAST":
                self._advance()
                self._expect_symbol("(")
                inner = self._expr()
                self._expect_keyword("AS")
                type_name = self._expect_name().upper()
                self._expect_symbol(")")
                return Cast(inner, type_name)
            if norm == "ROW_NUMBER":
                self._advance()
                self._expect_symbol("(")
                self._expect_symbol(")")
                self._expect_keyword("OVER")
                self._expect_symbol("(")
                self._expect_symbol(")")
                return RowNumber()
            if norm in _AGGREGATES:
                next_token = self._tokens[self._index + 1]
                if next_token.kind == SYMBOL and next_token.text == "(":
                    self._advance()
                    self._advance()
                    arg: Expr | Star
                    if self._accept_symbol("*"):
                        arg = Star()
                    else:
                        arg = self._expr()
                    self._expect_symbol(")")
                    return Aggregate(norm, arg)
            next_token = self._tokens[self._index + 1]
            if next_token.kind == SYMBOL and next_token.text == "(":
                name = self._advance().text
                self._advance()  # (
                args: list[Expr] = []
                if not self._accept_symbol(")"):
                    args.append(self._expr())
                    while self._accept_symbol(","):
                        args.append(self._expr())
                    self._expect_symbol(")")
                return FunctionCall(name, tuple(args))
        if token.kind in (IDENT, QIDENT):
            return self._column_ref()
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def _case(self) -> Expr:
        self._expect_keyword("CASE")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._bool_expr()
            self._expect_keyword("THEN")
            whens.append((condition, self._expr()))
        default = None
        if self._accept_keyword("ELSE"):
            default = self._expr()
        self._expect_keyword("END")
        if not whens:
            raise SqlSyntaxError("CASE without WHEN", self._current.position)
        return CaseWhen(tuple(whens), default)

    def _column_ref(self) -> ColumnRef:
        first = self._expect_name()
        if (
            self._current.kind == SYMBOL
            and self._current.text == "."
            and self._tokens[self._index + 1].kind in (IDENT, QIDENT)
        ):
            self._advance()
            return ColumnRef(self._expect_name(), qualifier=first)
        return ColumnRef(first)

    def _literal_value(self) -> Value:
        token = self._advance()
        if token.kind == STRING:
            return token.text
        if token.kind == NUMBER:
            return self._number(token.text)
        if token.kind == IDENT:
            if token.norm == "NULL":
                return NULL
            if token.norm in ("TRUE", "FALSE"):
                return token.norm == "TRUE"
        raise SqlSyntaxError(
            f"expected literal, got {token.text!r}", token.position
        )

    @staticmethod
    def _number(text: str) -> Value:
        if "." in text:
            return float(text)
        return int(text)


def parse_script(text: str) -> list[Statement]:
    """Parse a mini-SQL script into statements."""
    return _Parser(text).parse_script()


def parse_select(text: str) -> Query:
    """Parse a single SELECT / UNION ALL query (helper for tests)."""
    return _Parser(text)._query()
