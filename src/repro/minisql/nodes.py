"""AST nodes for the mini-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..relational.types import Value

# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A string/number/NULL/boolean literal."""

    value: Value


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference."""

    name: str
    qualifier: str | None = None


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass(frozen=True)
class Comparison:
    """``left OP right`` where OP is ``=`` or ``<>``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    expr: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class BoolOp:
    """``AND`` / ``OR`` over two or more operands."""

    op: str  # "AND" | "OR"
    operands: tuple["Expr", ...]


@dataclass(frozen=True)
class NotOp:
    """Logical negation."""

    operand: "Expr"


@dataclass(frozen=True)
class CaseWhen:
    """A searched CASE expression (no ELSE -> NULL)."""

    whens: tuple[tuple["Expr", "Expr"], ...]
    default: "Expr | None" = None


@dataclass(frozen=True)
class Cast:
    """``CAST(expr AS type)`` — only TEXT semantics are implemented."""

    expr: "Expr"
    type_name: str


@dataclass(frozen=True)
class FunctionCall:
    """``fn(arg, ...)`` resolved via the semantic-function registry."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Aggregate:
    """``MAX(col)`` / ``MIN(col)`` / ``COUNT(col|*)`` inside GROUP BY."""

    func: str
    arg: "Expr | Star"


@dataclass(frozen=True)
class RowNumber:
    """``ROW_NUMBER() OVER ()`` — 1-based position in deterministic order."""


@dataclass(frozen=True)
class Concat:
    """``a || b || ...`` string concatenation."""

    parts: tuple["Expr", ...]


Expr = Union[
    Literal,
    ColumnRef,
    Comparison,
    IsNull,
    BoolOp,
    NotOp,
    CaseWhen,
    Cast,
    FunctionCall,
    Aggregate,
    RowNumber,
    Concat,
]

# -- select ------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression (or star) with optional alias."""

    expr: Expr | Star
    alias: str | None = None


@dataclass(frozen=True)
class TableSource:
    """``FROM table [alias]``."""

    name: str
    alias: str | None = None


@dataclass(frozen=True)
class ValuesSource:
    """``(VALUES (...), ...) AS alias(col, ...)``."""

    rows: tuple[tuple[Value, ...], ...]
    alias: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class CrossJoin:
    """``left CROSS JOIN right``."""

    left: "FromClause"
    right: "FromClause"


FromClause = Union[TableSource, ValuesSource, CrossJoin]


@dataclass(frozen=True)
class Select:
    """A SELECT query (the subset the compiler emits)."""

    items: tuple[SelectItem, ...]
    source: FromClause
    where: Expr | None = None
    group_by: tuple[ColumnRef, ...] = field(default_factory=tuple)


# -- statements -----------------------------------------------------------------------


@dataclass(frozen=True)
class UnionAll:
    """``select UNION ALL select ...`` — row concatenation."""

    selects: tuple[Select, ...]


Query = Union[Select, UnionAll]


@dataclass(frozen=True)
class CreateTableAs:
    name: str
    select: "Query"


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class RenameTable:
    old: str
    new: str


@dataclass(frozen=True)
class RenameColumn:
    table: str
    old: str
    new: str


@dataclass(frozen=True)
class DropColumn:
    table: str
    column: str


@dataclass(frozen=True)
class InsertValues:
    table: str
    columns: tuple[str, ...]
    values: tuple[Value, ...]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None


Statement = Union[
    CreateTableAs,
    CreateTable,
    DropTable,
    RenameTable,
    RenameColumn,
    DropColumn,
    InsertValues,
    Delete,
]
