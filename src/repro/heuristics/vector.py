"""Term-vector heuristics: Euclidean, normalized Euclidean, cosine (§3).

A database is viewed as a vector over the space of (REL, ATT, VALUE) token
triples: component ``d_i`` counts the occurrences of the i-th triple among
the database's TNF rows.  The paper indexes the full ``n³`` triple space
over the token universe of the critical instances; since almost every
component is zero we represent vectors sparsely — all three distances only
involve the union of the two supports.

All three heuristics reduce to three exact integer aggregates: the state's
sum of squared counts ``S²``, the target's ``T²``, and their inner product
``D`` (``distance² = S² − 2D + T²``; ``cos = D / (√S²·√T²)``).  When the
incremental kill switch is on, ``S²`` and ``D`` come from the state's
delta-maintained :class:`~repro.relational.summary.DatabaseSummary` instead
of a fresh term vector; the aggregates are identical integers either way,
so the two arms agree bit-for-bit.
"""

from __future__ import annotations

import math
from collections import Counter

from ..relational import caching
from ..relational.database import Database
from ..relational.summary import database_summary
from ..relational.tnf import tnf_triples
from .base import Heuristic, ScaledHeuristic, round_half_up

TermVector = Counter


def term_vector(db: Database) -> TermVector:
    """The sparse (REL, ATT, VALUE)-triple count vector of *db*.

    Memoised on *db* alongside the other TNF-derived views (the underlying
    ``tnf_triples`` tuple was already cached; the Counter built from it was
    not, and heuristics call this once per estimate).  The returned Counter
    is shared — treat it as read-only.
    """
    return db.cached_view("term_vector", lambda: Counter(tnf_triples(db)))


def euclidean_distance(left: TermVector, right: TermVector) -> float:
    """Euclidean distance between two sparse vectors."""
    keys = left.keys() | right.keys()
    return math.sqrt(sum((left[k] - right[k]) ** 2 for k in keys))


def vector_norm(vector: TermVector) -> float:
    """The L2 norm of a sparse vector."""
    return math.sqrt(sum(count * count for count in vector.values()))


def cosine_similarity(
    left: TermVector,
    right: TermVector,
    left_norm: float | None = None,
    right_norm: float | None = None,
) -> float:
    """Cosine of the angle between two sparse vectors (0 for a zero vector).

    Callers that hold one operand fixed (heuristics compiled against a
    target) can pass its precomputed norm to skip recomputing it per call.
    """
    if left_norm is None:
        left_norm = vector_norm(left)
    if right_norm is None:
        right_norm = vector_norm(right)
    denominator = left_norm * right_norm
    if denominator == 0:
        return 0.0
    dot = sum(left[k] * right[k] for k in left.keys() & right.keys())
    return dot / denominator


class _TargetVectorMixin:
    """Shared target-side compilation for the triple-space heuristics."""

    def _compile_target(self, target: Database) -> None:
        self._target_vector = term_vector(target)
        target_summary = database_summary(target)
        self._target_triples = target_summary.triples
        self._target_sum_sq = target_summary.sum_sq


class EuclideanHeuristic(_TargetVectorMixin, Heuristic):
    """hE — unnormalized Euclidean distance in triple space."""

    name = "euclid"

    def __init__(self, target: Database) -> None:
        super().__init__(target)
        self._compile_target(target)

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            summary = database_summary(state)
            squared = (
                summary.sum_sq
                - 2 * summary.dot(self._target_triples)
                + self._target_sum_sq
            )
            return round_half_up(math.sqrt(squared))
        return round_half_up(euclidean_distance(term_vector(state), self._target_vector))


class NormalizedEuclideanHeuristic(_TargetVectorMixin, ScaledHeuristic):
    """h|E| — Euclidean distance between unit-normalized vectors, scaled by k.

    For unit vectors ``‖s/‖s‖ − t/‖t‖‖² = 2 − 2·cos(s, t)``, so both arms
    share one float tail over the exact integer aggregates (S², T², D) and
    agree bit-for-bit.
    """

    name = "euclid_norm"
    default_k = 7.0  # the paper's tuned IDA value; RBFS uses 20

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._compile_target(target)

    def _scaled_distance(self, sum_sq: int, dot: int) -> int:
        target_sum_sq = self._target_sum_sq
        if sum_sq == 0 and target_sum_sq == 0:
            return 0  # both databases are empty of cells
        if sum_sq == 0 or target_sum_sq == 0:
            return round_half_up(self.k)
        cosine = dot / (math.sqrt(sum_sq) * math.sqrt(target_sum_sq))
        squared = max(0.0, 2.0 - 2.0 * cosine)
        return round_half_up(self.k * math.sqrt(squared))

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            summary = database_summary(state)
            return self._scaled_distance(
                summary.sum_sq, summary.dot(self._target_triples)
            )
        state_vector = term_vector(state)
        sum_sq = sum(count * count for count in state_vector.values())
        target_vector = self._target_vector
        dot = sum(
            state_vector[k] * target_vector[k]
            for k in state_vector.keys() & target_vector.keys()
        )
        return self._scaled_distance(sum_sq, dot)


class CosineHeuristic(_TargetVectorMixin, ScaledHeuristic):
    """hcos — ``k * (1 - cosine_similarity)``; low for near-parallel vectors."""

    name = "cosine"
    default_k = 5.0  # the paper's tuned IDA value; RBFS uses 24

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._compile_target(target)
        self._target_norm = vector_norm(self._target_vector)

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            summary = database_summary(state)
            if not summary.triples and not self._target_triples:
                return 0  # both databases are empty of cells
            denominator = math.sqrt(summary.sum_sq) * self._target_norm
            if denominator == 0:
                similarity = 0.0
            else:
                similarity = summary.dot(self._target_triples) / denominator
            return round_half_up(self.k * (1.0 - similarity))
        state_vector = term_vector(state)
        if not state_vector and not self._target_vector:
            return 0  # both databases are empty of cells
        similarity = cosine_similarity(
            state_vector, self._target_vector, right_norm=self._target_norm
        )
        return round_half_up(self.k * (1.0 - similarity))
