"""Term-vector heuristics: Euclidean, normalized Euclidean, cosine (§3).

A database is viewed as a vector over the space of (REL, ATT, VALUE) token
triples: component ``d_i`` counts the occurrences of the i-th triple among
the database's TNF rows.  The paper indexes the full ``n³`` triple space
over the token universe of the critical instances; since almost every
component is zero we represent vectors sparsely — all three distances only
involve the union of the two supports.
"""

from __future__ import annotations

import math
from collections import Counter

from ..relational.database import Database
from ..relational.tnf import tnf_triples
from .base import Heuristic, ScaledHeuristic, round_half_up

TermVector = Counter


def term_vector(db: Database) -> TermVector:
    """The sparse (REL, ATT, VALUE)-triple count vector of *db*."""
    return Counter(tnf_triples(db))


def euclidean_distance(left: TermVector, right: TermVector) -> float:
    """Euclidean distance between two sparse vectors."""
    keys = left.keys() | right.keys()
    return math.sqrt(sum((left[k] - right[k]) ** 2 for k in keys))


def vector_norm(vector: TermVector) -> float:
    """The L2 norm of a sparse vector."""
    return math.sqrt(sum(count * count for count in vector.values()))


def cosine_similarity(
    left: TermVector,
    right: TermVector,
    left_norm: float | None = None,
    right_norm: float | None = None,
) -> float:
    """Cosine of the angle between two sparse vectors (0 for a zero vector).

    Callers that hold one operand fixed (heuristics compiled against a
    target) can pass its precomputed norm to skip recomputing it per call.
    """
    if left_norm is None:
        left_norm = vector_norm(left)
    if right_norm is None:
        right_norm = vector_norm(right)
    denominator = left_norm * right_norm
    if denominator == 0:
        return 0.0
    dot = sum(left[k] * right[k] for k in left.keys() & right.keys())
    return dot / denominator


class EuclideanHeuristic(Heuristic):
    """hE — unnormalized Euclidean distance in triple space."""

    name = "euclid"

    def __init__(self, target: Database) -> None:
        super().__init__(target)
        self._target_vector = term_vector(target)

    def estimate(self, state: Database) -> int:
        return round_half_up(euclidean_distance(term_vector(state), self._target_vector))


class NormalizedEuclideanHeuristic(ScaledHeuristic):
    """h|E| — Euclidean distance between unit-normalized vectors, scaled by k."""

    name = "euclid_norm"
    default_k = 7.0  # the paper's tuned IDA value; RBFS uses 20

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._target_vector = term_vector(target)
        self._target_norm = vector_norm(self._target_vector)

    def estimate(self, state: Database) -> int:
        state_vector = term_vector(state)
        state_norm = vector_norm(state_vector)
        if state_norm == 0 and self._target_norm == 0:
            return 0  # both databases are empty of cells
        if state_norm == 0 or self._target_norm == 0:
            return round_half_up(self.k)
        keys = state_vector.keys() | self._target_vector.keys()
        squared = sum(
            (state_vector[k] / state_norm - self._target_vector[k] / self._target_norm)
            ** 2
            for k in keys
        )
        return round_half_up(self.k * math.sqrt(squared))


class CosineHeuristic(ScaledHeuristic):
    """hcos — ``k * (1 - cosine_similarity)``; low for near-parallel vectors."""

    name = "cosine"
    default_k = 5.0  # the paper's tuned IDA value; RBFS uses 24

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._target_vector = term_vector(target)
        self._target_norm = vector_norm(self._target_vector)

    def estimate(self, state: Database) -> int:
        state_vector = term_vector(state)
        if not state_vector and not self._target_vector:
            return 0  # both databases are empty of cells
        similarity = cosine_similarity(
            state_vector, self._target_vector, right_norm=self._target_norm
        )
        return round_half_up(self.k * (1.0 - similarity))
