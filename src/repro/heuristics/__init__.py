"""Search heuristics (§3 of the paper): h0–h3, Levenshtein, term-vector."""

from .base import Heuristic, ScaledHeuristic, round_half_up
from .hybrid import HybridHeuristic
from .registry import (
    EXTENSION_HEURISTIC_NAMES,
    HEURISTIC_CLASSES,
    HEURISTIC_NAMES,
    PAPER_SCALING_CONSTANTS,
    default_k,
    heuristic_factory,
    make_heuristic,
)
from .setbased import (
    BlindHeuristic,
    CrossLevelHeuristic,
    MaxSetHeuristic,
    MissingTokensHeuristic,
)
from .stringview import LevenshteinHeuristic, levenshtein
from .vector import (
    CosineHeuristic,
    EuclideanHeuristic,
    NormalizedEuclideanHeuristic,
    cosine_similarity,
    euclidean_distance,
    term_vector,
    vector_norm,
)

__all__ = [
    "Heuristic",
    "ScaledHeuristic",
    "round_half_up",
    "HybridHeuristic",
    "EXTENSION_HEURISTIC_NAMES",
    "HEURISTIC_CLASSES",
    "HEURISTIC_NAMES",
    "PAPER_SCALING_CONSTANTS",
    "default_k",
    "heuristic_factory",
    "make_heuristic",
    "BlindHeuristic",
    "CrossLevelHeuristic",
    "MaxSetHeuristic",
    "MissingTokensHeuristic",
    "LevenshteinHeuristic",
    "levenshtein",
    "CosineHeuristic",
    "EuclideanHeuristic",
    "NormalizedEuclideanHeuristic",
    "cosine_similarity",
    "euclidean_distance",
    "term_vector",
    "vector_norm",
]
