"""Heuristic registry and the paper's tuned scaling constants.

The paper reports (§5) that "through extensive empirical evaluation ... the
following values for the heuristic scaling constants k give overall optimal
performance":

==========  ==============  ===========  ===========
algorithm   euclid_norm     cosine       levenshtein
==========  ==============  ===========  ===========
IDA         7               5            11
RBFS        20              24           15
==========  ==============  ===========  ===========

:func:`make_heuristic` builds a heuristic by name, applying these defaults
when the algorithm is known; `benchmarks/bench_table_k_calibration.py`
re-derives the constants empirically.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownHeuristicError
from ..relational.database import Database
from .base import Heuristic, ScaledHeuristic
from .setbased import (
    BlindHeuristic,
    CrossLevelHeuristic,
    MaxSetHeuristic,
    MissingTokensHeuristic,
)
from .hybrid import HybridHeuristic
from .stringview import LevenshteinHeuristic
from .vector import CosineHeuristic, EuclideanHeuristic, NormalizedEuclideanHeuristic

HEURISTIC_CLASSES: dict[str, type[Heuristic]] = {
    cls.name: cls
    for cls in (
        BlindHeuristic,
        MissingTokensHeuristic,
        CrossLevelHeuristic,
        MaxSetHeuristic,
        LevenshteinHeuristic,
        EuclideanHeuristic,
        NormalizedEuclideanHeuristic,
        CosineHeuristic,
        HybridHeuristic,
    )
}

#: all registered heuristic names in the paper's presentation order
HEURISTIC_NAMES: tuple[str, ...] = (
    "h0",
    "h1",
    "h2",
    "h3",
    "euclid",
    "euclid_norm",
    "cosine",
    "levenshtein",
)

#: extension heuristics beyond the paper (not part of HEURISTIC_NAMES so the
#: figure benches sweep exactly the paper's eight)
EXTENSION_HEURISTIC_NAMES: tuple[str, ...] = ("hybrid",)

#: the paper's tuned scaling constants, per search algorithm
PAPER_SCALING_CONSTANTS: dict[str, dict[str, float]] = {
    "ida": {"euclid_norm": 7, "cosine": 5, "levenshtein": 11},
    "rbfs": {"euclid_norm": 20, "cosine": 24, "levenshtein": 15},
}


def default_k(heuristic: str, algorithm: str | None) -> float | None:
    """The paper's tuned k for *heuristic* under *algorithm*, if any."""
    if algorithm is None:
        return None
    return PAPER_SCALING_CONSTANTS.get(algorithm.lower(), {}).get(heuristic)


def make_heuristic(
    name: str,
    target: Database,
    k: float | None = None,
    algorithm: str | None = None,
) -> Heuristic:
    """Build the named heuristic compiled against *target*.

    Args:
        name: one of :data:`HEURISTIC_NAMES`.
        target: target critical instance.
        k: scaling constant override (scaled heuristics only).
        algorithm: ``"ida"`` or ``"rbfs"``; selects the paper's tuned k
            when *k* is not given.

    Raises:
        UnknownHeuristicError: for unregistered names.
    """
    try:
        cls = HEURISTIC_CLASSES[name]
    except KeyError:
        raise UnknownHeuristicError(name, HEURISTIC_NAMES) from None
    if issubclass(cls, ScaledHeuristic):
        if k is None:
            k = default_k(name, algorithm)
        return cls(target, k=k)
    return cls(target)


HeuristicFactory = Callable[[Database], Heuristic]


def heuristic_factory(
    name: str, k: float | None = None, algorithm: str | None = None
) -> HeuristicFactory:
    """A factory closing over name/k, for APIs that defer target binding."""

    def build(target: Database) -> Heuristic:
        return make_heuristic(name, target, k=k, algorithm=algorithm)

    return build
