"""Set-based similarity heuristics h0–h3 (§3, "Set Based Similarity").

All are defined over the TNF projections π_REL, π_ATT, π_VALUE of the
candidate state ``x`` and target ``t``:

* ``h0(x) = 0`` — the blind baseline inducing brute-force search;
* ``h1`` counts target relation/attribute/value tokens missing from ``x``;
* ``h2`` counts cross-level overlaps (target relation names appearing as
  attribute names or data values of ``x``, etc.) — a lower bound on the
  promotions (↑) and demotions (↓) still required;
* ``h3 = max(h1, h2)``.
"""

from __future__ import annotations

from ..relational import caching
from ..relational.database import Database
from ..relational.summary import database_summary
from ..relational.tnf import tnf_projections
from .base import Heuristic


class BlindHeuristic(Heuristic):
    """h0 — constant zero; turns IDA*/RBFS into blind uniform-cost search."""

    name = "h0"
    wants_summaries = False

    def estimate(self, state: Database) -> int:
        return 0


class MissingTokensHeuristic(Heuristic):
    """h1 — target TNF tokens (REL/ATT/VALUE level-wise) missing from x."""

    name = "h1"

    def __init__(self, target: Database) -> None:
        super().__init__(target)
        self._t_rel, self._t_att, self._t_val = tnf_projections(target)
        target_summary = database_summary(target)
        self._t_rel_ids = frozenset(target_summary.rel_ids)
        self._t_att_ids = frozenset(target_summary.att_ids)
        self._t_val_ids = frozenset(target_summary.val_ids)

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            # Token ids and texts are in bijection, so counting missing ids
            # against the (delta-maintained) summary projections equals the
            # legacy text-set arithmetic exactly.
            summary = database_summary(state)
            return (
                len(self._t_rel_ids - summary.rel_ids)
                + len(self._t_att_ids - summary.att_ids)
                + len(self._t_val_ids - summary.val_ids)
            )
        x_rel, x_att, x_val = tnf_projections(state)
        return (
            len(self._t_rel - x_rel)
            + len(self._t_att - x_att)
            + len(self._t_val - x_val)
        )


class CrossLevelHeuristic(Heuristic):
    """h2 — cross-level overlaps between target and state TNF projections.

    Counts target tokens that are present in ``x`` but *at the wrong level*
    (e.g. a target attribute name appearing as a data value of ``x`` needs a
    promotion).  The paper reads this as "the minimum number of data
    promotions (↑) and metadata demotions (↓) needed".
    """

    name = "h2"

    def __init__(self, target: Database) -> None:
        super().__init__(target)
        self._t_rel, self._t_att, self._t_val = tnf_projections(target)
        target_summary = database_summary(target)
        self._t_rel_ids = frozenset(target_summary.rel_ids)
        self._t_att_ids = frozenset(target_summary.att_ids)
        self._t_val_ids = frozenset(target_summary.val_ids)

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            summary = database_summary(state)
            return (
                len(self._t_rel_ids & summary.att_ids)
                + len(self._t_rel_ids & summary.val_ids)
                + len(self._t_att_ids & summary.rel_ids)
                + len(self._t_att_ids & summary.val_ids)
                + len(self._t_val_ids & summary.rel_ids)
                + len(self._t_val_ids & summary.att_ids)
            )
        x_rel, x_att, x_val = tnf_projections(state)
        return (
            len(self._t_rel & x_att)
            + len(self._t_rel & x_val)
            + len(self._t_att & x_rel)
            + len(self._t_att & x_val)
            + len(self._t_val & x_rel)
            + len(self._t_val & x_att)
        )


class MaxSetHeuristic(Heuristic):
    """h3 — pointwise maximum of h1 and h2."""

    name = "h3"

    def __init__(self, target: Database) -> None:
        super().__init__(target)
        self._h1 = MissingTokensHeuristic(target)
        self._h2 = CrossLevelHeuristic(target)

    def estimate(self, state: Database) -> int:
        return max(self._h1.estimate(state), self._h2.estimate(state))
