"""Hybrid content+structure heuristic (extension beyond the paper).

The paper's conclusion asks: "The Levenshtein, Euclidean, and Cosine
Similarity based search heuristics mostly focus on the content of database
states.  Successful heuristics must measure both content and structure.
Is there a good multi-purpose search heuristic?"

:class:`HybridHeuristic` is our answer attempt: the pointwise maximum of

* ``h1`` — the structural token-level count of missing relation/attribute/
  value names (exact about *what* is missing), and
* the scaled cosine heuristic — the content-distribution view (sensitive
  to *where* tokens sit, e.g. distinguishing correct from incorrect
  renames via (REL, ATT, VALUE) co-occurrence).

Taking the max keeps whichever signal is currently more informative:
h1 dominates early (many tokens missing), cosine dominates on plateaus
where all tokens are present but mis-placed.  The
``bench_extension_hybrid_heuristic.py`` bench evaluates it across all
three experiment workloads.
"""

from __future__ import annotations

from ..relational.database import Database
from .base import ScaledHeuristic
from .setbased import MissingTokensHeuristic
from .vector import CosineHeuristic


class HybridHeuristic(ScaledHeuristic):
    """max(h1, k·(1 − cosine)) — structure and content combined."""

    name = "hybrid"
    default_k = 12.0

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._h1 = MissingTokensHeuristic(target)
        self._cosine = CosineHeuristic(target, k=self.k)

    def estimate(self, state: Database) -> int:
        return max(self._h1.estimate(state), self._cosine.estimate(state))
