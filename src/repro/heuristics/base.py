"""Heuristic abstraction.

A search heuristic ``h(x)`` estimates the number of transformation steps
from database *x* to the target critical instance *t* (§3).  Heuristics are
*compiled against the target*: construction precomputes whatever view of
``t`` the estimate needs (TNF projections, the database string, the term
vector), and evaluation sees only candidate states.

Estimates are memoised per state: databases are immutable and hashable, and
both IDA* and RBFS re-visit states across iterations/backtracks, so caching
changes nothing semantically while matching the paper's "states examined"
accounting (each distinct state is examined once per evaluation site).
"""

from __future__ import annotations

import abc
import math

from ..relational.database import Database


def round_half_up(value: float) -> int:
    """Round to the nearest integer, halves away from zero.

    Python's built-in ``round`` is banker's rounding; the paper's
    ``round(y)`` is "the integer closest to y", which we take as the
    conventional half-up rule.
    """
    return int(math.floor(value + 0.5)) if value >= 0 else int(math.ceil(value - 0.5))


class Heuristic(abc.ABC):
    """Base class for search heuristics.

    Args:
        target: the target critical instance the heuristic is compiled for.
    """

    #: registry key (e.g. ``"h1"``, ``"cosine"``)
    name: str = ""

    def __init__(self, target: Database) -> None:
        self._target = target
        self._cache: dict[Database, int] = {}
        self.evaluations = 0  # total calls, including cache hits

    @property
    def target(self) -> Database:
        """The target instance this heuristic was compiled for."""
        return self._target

    def __call__(self, state: Database) -> int:
        """The estimated distance from *state* to the target (memoised)."""
        self.evaluations += 1
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        value = self.estimate(state)
        if value < 0:
            raise ValueError(
                f"heuristic {self.name!r} returned negative estimate {value}"
            )
        self._cache[state] = value
        return value

    @abc.abstractmethod
    def estimate(self, state: Database) -> int:
        """Compute the estimate for a state (no caching)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ScaledHeuristic(Heuristic):
    """Base for heuristics with the paper's scaling constant ``k``.

    The normalized Levenshtein, normalized Euclidean, and cosine heuristics
    all map a similarity in ``[0, 1]`` onto ``[0, k]`` (k ≫ 1); the tuned
    values of k differ per search algorithm (§5, constants table).
    """

    #: default scaling constant when none is supplied
    default_k: float = 10.0

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target)
        self.k = float(self.default_k if k is None else k)
        if self.k < 1:
            raise ValueError(f"scaling constant k must be >= 1, got {self.k}")
