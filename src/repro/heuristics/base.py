"""Heuristic abstraction.

A search heuristic ``h(x)`` estimates the number of transformation steps
from database *x* to the target critical instance *t* (§3).  Heuristics are
*compiled against the target*: construction precomputes whatever view of
``t`` the estimate needs (TNF projections, the database string, the term
vector), and evaluation sees only candidate states.

Estimates are memoised per state: databases are immutable and hashable, and
both IDA* and RBFS re-visit states across iterations/backtracks, so caching
changes nothing semantically while matching the paper's "states examined"
accounting (each distinct state is examined once per evaluation site).

The memo cache integrates with the search instrumentation: bind a
:class:`~repro.search.stats.SearchStats` via :meth:`Heuristic.bind_stats`
and hits / misses / evictions plus estimate wall-clock are recorded there
(the search engine does this automatically).  :attr:`Heuristic.cache_capacity`
bounds the cache with LRU eviction, consistent with the transposition table
in :mod:`repro.search.problem`.
"""

from __future__ import annotations

import abc
import math
from collections import OrderedDict
from time import perf_counter
from typing import TYPE_CHECKING

from ..obs.events import CACHE_HIT, CACHE_MISS
from ..obs.metrics import HEURISTIC_BUCKETS
from ..relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..search.stats import SearchStats


def round_half_up(value: float) -> int:
    """Round to the nearest integer, halves away from zero.

    Python's built-in ``round`` is banker's rounding; the paper's
    ``round(y)`` is "the integer closest to y", which we take as the
    conventional half-up rule.
    """
    return int(math.floor(value + 0.5)) if value >= 0 else int(math.ceil(value - 0.5))


class Heuristic(abc.ABC):
    """Base class for search heuristics.

    Args:
        target: the target critical instance the heuristic is compiled for.
    """

    #: registry key (e.g. ``"h1"``, ``"cosine"``)
    name: str = ""

    #: whether this heuristic consumes :mod:`repro.relational.summary`
    #: state summaries when the incremental kill switch is on.  The search
    #: engine only threads parent/delta provenance through successor
    #: generation for heuristics that declare interest (h0 does not, so
    #: blind runs pay nothing for the machinery).
    wants_summaries: bool = True

    def __init__(self, target: Database) -> None:
        self._target = target
        self._cache: OrderedDict[Database, int] = OrderedDict()
        self._stats: "SearchStats | None" = None
        #: optional LRU bound on the estimate cache (None = unbounded)
        self.cache_capacity: int | None = None

    @property
    def target(self) -> Database:
        """The target instance this heuristic was compiled for."""
        return self._target

    def bind_stats(self, stats: "SearchStats | None") -> None:
        """Report cache hits/misses/evictions and timing to *stats*."""
        self._stats = stats

    def clear_cache(self) -> None:
        """Drop all memoised estimates."""
        self._cache.clear()

    def memo_size(self) -> int:
        """Number of memoised estimates (no snapshot copy)."""
        return len(self._cache)

    def export_memo(self) -> list[tuple[Database, int]]:
        """Snapshot of the memoised estimates, least recently used first.

        Consumed by the warm-start spill exporter
        (:meth:`~repro.search.problem.MappingProblem.export_warm_tables`).
        """
        return list(self._cache.items())

    def preseed_memo(self, entries) -> int:
        """Bulk-load ``(state, estimate)`` pairs into the memo cache.

        The warm-start inverse of :meth:`export_memo`: entries are inserted
        in iteration order (so a capacity bound evicts the oldest, matching
        the exported LRU order) and validated the way :meth:`__call__`
        validates fresh estimates.  Returns the number of entries loaded.
        """
        cache = self._cache
        count = 0
        for state, value in entries:
            value = int(value)
            if value < 0:
                raise ValueError(
                    f"heuristic {self.name!r} memo holds negative estimate "
                    f"{value}"
                )
            cache[state] = value
            count += 1
        if self.cache_capacity is not None:
            while len(cache) > self.cache_capacity:
                cache.popitem(last=False)
        return count

    def __call__(self, state: Database) -> int:
        """The estimated distance from *state* to the target (memoised)."""
        stats = self._stats
        cache = self._cache
        cached = cache.get(state)
        if cached is not None:
            if self.cache_capacity is not None:  # LRU order only when bounded
                cache.move_to_end(state)
            if stats is not None:
                stats.heuristic_cache_hits += 1
                tracer = stats.tracer
                if tracer.enabled:
                    tracer.emit(CACHE_HIT, cache="heuristic")
            return cached
        start = perf_counter()
        value = self.estimate(state)
        if value < 0:
            raise ValueError(
                f"heuristic {self.name!r} returned negative estimate {value}"
            )
        cache[state] = value
        if stats is not None:
            stats.heuristic_cache_misses += 1
            stats.time_in_heuristic += perf_counter() - start
            tracer = stats.tracer
            if tracer.enabled:
                tracer.emit(CACHE_MISS, cache="heuristic", value=value)
            if stats.metrics is not None:
                stats.metrics.histogram(
                    "search.heuristic_value", HEURISTIC_BUCKETS
                ).observe(value)
        if self.cache_capacity is not None and len(cache) > self.cache_capacity:
            cache.popitem(last=False)
            if stats is not None:
                stats.heuristic_cache_evictions += 1
        return value

    @abc.abstractmethod
    def estimate(self, state: Database) -> int:
        """Compute the estimate for a state (no caching)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ScaledHeuristic(Heuristic):
    """Base for heuristics with the paper's scaling constant ``k``.

    The normalized Levenshtein, normalized Euclidean, and cosine heuristics
    all map a similarity in ``[0, 1]`` onto ``[0, k]`` (k ≫ 1); the tuned
    values of k differ per search algorithm (§5, constants table).
    """

    #: default scaling constant when none is supplied
    default_k: float = 10.0

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target)
        self.k = float(self.default_k if k is None else k)
        if self.k < 1:
            raise ValueError(f"scaling constant k must be >= 1, got {self.k}")
