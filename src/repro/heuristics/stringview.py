"""String-view heuristic: normalized Levenshtein distance (§3).

A TNF database ``d`` with rows ``(k_i, r_i, a_i, v_i)`` is rendered as the
concatenation of the lexicographically sorted strings ``r_i + a_i + v_i``;
the heuristic is the Levenshtein edit distance between the state string and
the target string, normalized by the longer length and scaled to ``[0, k]``.
"""

from __future__ import annotations

from ..relational import caching
from ..relational.database import Database
from ..relational.summary import database_summary
from ..relational.tnf import database_string
from .base import ScaledHeuristic, round_half_up

try:  # numpy accelerates the DP rows; the pure-Python path remains correct
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a soft dependency
    _np = None

#: below this size the pure-Python DP beats numpy's per-call overhead
_NUMPY_THRESHOLD = 64


def _levenshtein_python(left: str, right: str) -> int:
    """Two-row dynamic program: O(|left|·|right|) time, O(|right|) memory."""
    previous = list(range(len(right) + 1))
    for i, lchar in enumerate(left, start=1):
        current = [i]
        for j, rchar in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (lchar != rchar)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def _levenshtein_numpy(left: str, right: str) -> int:
    """Row-vectorised DP.

    Substitution/deletion are elementwise; the insertion chain
    ``cur[j] <= cur[j-1] + 1`` is closed with the classic trick
    ``cur = min.accumulate(cur - j) + j``.
    """
    right_codes = _np.frombuffer(right.encode("utf-32-le"), dtype=_np.uint32)
    n = len(right)
    offsets = _np.arange(n + 1, dtype=_np.int64)
    previous = offsets.copy()
    current = _np.empty(n + 1, dtype=_np.int64)
    for i, lchar in enumerate(left, start=1):
        current[0] = i
        substitute = previous[:-1] + (right_codes != ord(lchar))
        delete = previous[1:] + 1
        current[1:] = _np.minimum(substitute, delete)
        current -= offsets
        _np.minimum.accumulate(current, out=current)
        current += offsets
        previous, current = current, previous
    return int(previous[-1])


def levenshtein(left: str, right: str) -> int:
    """Classic single-character insert/delete/substitute edit distance."""
    if left == right:
        return 0
    # Keep the inner dimension (right) the shorter one.
    if len(right) > len(left):
        left, right = right, left
    if not right:
        return len(left)
    if _np is not None and len(right) >= _NUMPY_THRESHOLD:
        return _levenshtein_numpy(left, right)
    return _levenshtein_python(left, right)


class LevenshteinHeuristic(ScaledHeuristic):
    """hL — scaled, length-normalized Levenshtein distance between the
    string views of the state and the target."""

    name = "levenshtein"
    default_k = 11.0  # the paper's tuned IDA value; RBFS uses 15

    def __init__(self, target: Database, k: float | None = None) -> None:
        super().__init__(target, k)
        self._target_string = database_string(target)

    def estimate(self, state: Database) -> int:
        if caching.incremental_heuristics_enabled():
            # Rebuild the string view from the delta-maintained summary's
            # triple counts instead of the TNF cell walk; same multiset of
            # per-cell terms, same sort, same string — cached under the
            # same view key, so the arms share work when mixed.
            state_string = state.cached_view(
                "database_string",
                lambda: database_summary(state).to_database_string(),
            )
        else:
            state_string = database_string(state)
        longest = max(len(state_string), len(self._target_string))
        if longest == 0:
            return 0
        distance = levenshtein(state_string, self._target_string)
        return round_half_up(self.k * distance / longest)
