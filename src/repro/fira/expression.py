"""Mapping expressions: composable pipelines of L operators.

A :class:`MappingExpression` is the artifact TUPELO discovers — the sequence
of operators transforming source instances into target instances (the
"transformation path" of §2.3).  Expressions are immutable, comparable,
pretty-printable in both the textual syntax and the paper's unicode
notation, and executable against any database instance of the source
schema.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..relational.database import Database
from .base import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.functions import FunctionRegistry


class MappingExpression:
    """An ordered pipeline of L operators.

    Args:
        operators: the operators, applied left to right.
    """

    __slots__ = ("_operators",)

    def __init__(self, operators: Iterable[Operator] = ()) -> None:
        self._operators: tuple[Operator, ...] = tuple(operators)

    # -- accessors -------------------------------------------------------------

    @property
    def operators(self) -> tuple[Operator, ...]:
        """The pipeline's operators in application order."""
        return self._operators

    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators)

    def __getitem__(self, index: int) -> Operator:
        return self._operators[index]

    @property
    def is_identity(self) -> bool:
        """Whether the pipeline is empty (the identity mapping)."""
        return not self._operators

    # -- algebra ------------------------------------------------------------------

    def then(self, operator: Operator) -> "MappingExpression":
        """A new expression with *operator* appended."""
        return MappingExpression(self._operators + (operator,))

    def compose(self, other: "MappingExpression") -> "MappingExpression":
        """Sequential composition: apply self, then *other*."""
        return MappingExpression(self._operators + other.operators)

    def prefix(self, length: int) -> "MappingExpression":
        """The first *length* operators as an expression."""
        return MappingExpression(self._operators[:length])

    # -- execution ------------------------------------------------------------------

    def apply(
        self, db: Database, registry: "FunctionRegistry | None" = None
    ) -> Database:
        """Execute the pipeline on *db*.

        *registry* resolves λ function symbols; pipelines without λ run
        without one.
        """
        for operator in self._operators:
            db = operator.apply(db, registry)
        return db

    def trace(
        self, db: Database, registry: "FunctionRegistry | None" = None
    ) -> list[Database]:
        """Execute and return every intermediate database (R1, R2, ... of
        Example 2), starting with the input."""
        states = [db]
        for operator in self._operators:
            db = operator.apply(db, registry)
            states.append(db)
        return states

    # -- rendering ---------------------------------------------------------------------

    def __str__(self) -> str:
        return "\n".join(str(op) for op in self._operators)

    def to_unicode(self) -> str:
        """Paper-style rendering, one numbered step per line (Example 2)."""
        lines = []
        for i, op in enumerate(self._operators, start=1):
            lines.append(f"R{i} := {op.to_unicode()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MappingExpression({len(self._operators)} ops)"

    # -- comparisons -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingExpression):
            return NotImplemented
        return self._operators == other.operators

    def __hash__(self) -> int:
        return hash(self._operators)


def expression_of(*operators: Operator) -> MappingExpression:
    """Convenience constructor: ``expression_of(op1, op2, ...)``."""
    return MappingExpression(operators)


def equivalent_on(
    left: MappingExpression,
    right: MappingExpression,
    instances: Sequence[Database],
    registry: "FunctionRegistry | None" = None,
) -> bool:
    """Whether two expressions agree on every instance in *instances*.

    Expression equivalence is undecidable in general; this is the practical
    example-based check used by tests and ablations.
    """
    return all(
        left.apply(db, registry) == right.apply(db, registry) for db in instances
    )
