"""Rename operators ρatt / ρrel (schema matching as a special case of L).

The paper observes that using L for data mapping "blurs the distinction
between schema matching and schema mapping since L has simple schema
matching (i.e., finding appropriate renamings via ρ) as a special case."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OperatorApplicationError
from ..relational.database import Database
from .base import Operator, RelationOperator


@dataclass(frozen=True)
class RenameAttribute(RelationOperator):
    """ρatt — rename attribute *old* to *new* in one relation.

    Example 2 (step R4): ``ρatt AgentFee→Fee`` matches schema elements.
    """

    relation: str
    old: str
    new: str

    keyword = "rename_att"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.old):
            raise OperatorApplicationError(
                f"rename_att: {self.relation!r} has no attribute {self.old!r}"
            )
        if self.old == self.new:
            raise OperatorApplicationError(
                f"rename_att: renaming {self.old!r} to itself is not a transformation"
            )
        if rel.has_attribute(self.new):
            raise OperatorApplicationError(
                f"rename_att: {self.relation!r} already has attribute {self.new!r}"
            )
        return db.with_relation(rel.rename_attribute(self.old, self.new))

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation) or self.old == self.new:
            return False
        rel = db.relation(self.relation)
        return rel.has_attribute(self.old) and not rel.has_attribute(self.new)

    def __str__(self) -> str:
        return f"rename_att[{self.relation}]({self.old} -> {self.new})"

    def to_unicode(self) -> str:
        return f"ρatt{{{self.old}→{self.new}}}({self.relation})"


@dataclass(frozen=True)
class RenameRelation(Operator):
    """ρrel — rename a relation.

    Example 2 (step R4): ``ρrel Prices→Flights``.
    """

    old: str
    new: str

    keyword = "rename_rel"

    def apply(self, db: Database, registry=None) -> Database:
        if not db.has_relation(self.old):
            raise OperatorApplicationError(
                f"rename_rel: no relation {self.old!r} in {db!r}"
            )
        if self.old == self.new:
            raise OperatorApplicationError(
                f"rename_rel: renaming {self.old!r} to itself is not a transformation"
            )
        if db.has_relation(self.new):
            raise OperatorApplicationError(
                f"rename_rel: relation {self.new!r} already exists"
            )
        return db.rename_relation(self.old, self.new)

    def is_applicable(self, db: Database) -> bool:
        return (
            self.old != self.new
            and db.has_relation(self.old)
            and not db.has_relation(self.new)
        )

    def __str__(self) -> str:
        return f"rename_rel({self.old} -> {self.new})"

    def to_unicode(self) -> str:
        return f"ρrel{{{self.old}→{self.new}}}"
