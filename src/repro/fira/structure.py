"""Column-level structural operators: drop (π̄) and selection (σ).

Selection is *not* part of the searched language — the paper treats σ as a
post-processing step "to filter mapping results according to external
criteria, since it is known that generalizing selection conditions is a
nontrivial problem" (§2.1).  It is provided here so complete executable
pipelines can be expressed and run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OperatorApplicationError
from ..relational.database import Database
from ..relational.types import Value, is_null
from .base import RelationOperator


@dataclass(frozen=True)
class DropAttribute(RelationOperator):
    """π̄A — drop column A from a relation (projection complement).

    Example 2 (step R2): ``π̄Route(π̄Cost(R1))`` removes the promoted-away
    columns.  Dropping the last remaining attribute is not allowed.
    """

    relation: str
    attribute: str

    keyword = "drop"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.attribute):
            raise OperatorApplicationError(
                f"drop: {self.relation!r} has no attribute {self.attribute!r}"
            )
        if rel.arity == 1:
            raise OperatorApplicationError(
                f"drop: {self.attribute!r} is the only attribute of {self.relation!r}"
            )
        return db.with_relation(rel.drop_attribute(self.attribute))

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        return rel.has_attribute(self.attribute) and rel.arity > 1

    def __str__(self) -> str:
        return f"drop[{self.relation}]({self.attribute})"

    def to_unicode(self) -> str:
        return f"π̄{{{self.attribute}}}({self.relation})"


@dataclass(frozen=True)
class Select(RelationOperator):
    """σ — keep only tuples whose *attribute* equals *value*.

    Post-processing only; never proposed by the search successor generator.
    """

    relation: str
    attribute: str
    value: Value

    keyword = "select"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.attribute):
            raise OperatorApplicationError(
                f"select: {self.relation!r} has no attribute {self.attribute!r}"
            )
        position = rel.attribute_position(self.attribute)
        if is_null(self.value):
            kept = [row for row in rel.rows if is_null(row[position])]
        else:
            kept = [row for row in rel.rows if row[position] == self.value]
        return db.with_relation(rel.with_rows(kept))

    def __str__(self) -> str:
        return f"select[{self.relation}]({self.attribute} = {self.value!r})"

    def to_unicode(self) -> str:
        return f"σ{{{self.attribute}={self.value!r}}}({self.relation})"
