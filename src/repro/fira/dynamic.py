"""Dynamic data-metadata operators: promote (↑), demote (↓), dereference (→),
partition (℘).

These are the operators that let L move information between the data and
metadata levels (Table 1 of the paper):

* ``↑A→B`` promotes the *values* of column A to new attribute names, each
  new column carrying the corresponding value of column B — the core of a
  relational PIVOT.  Mapping FlightsB to FlightsA starts with
  ``↑Cost/Route``: Route values (ATL29, ORD17) become columns holding Cost.
* ``↓`` demotes metadata to data: the cartesian product of R with a binary
  table listing R's metadata (relation name and attribute names).  Composed
  with dereference it expresses UNPIVOT.
* ``→B/A`` appends a column B holding ``t[t[A]]``: the value of the
  attribute *named by* t's value in column A.
* ``℘A`` partitions R into one relation per value of column A, named by
  that value — promoting data to *relation* names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OperatorApplicationError
from ..relational import caching
from ..relational.database import Database
from ..relational.intern import NULL_TOKEN, TEXTS, intern_value
from ..relational.relation import Relation, TokenRow
from ..relational.types import NULL, Value, is_null, value_to_text
from .base import RelationOperator

#: reserved column names introduced by demote
DEMOTE_REL_ATTR = "$REL"
DEMOTE_ATT_ATTR = "$ATT"


def _column_name_for(value: Value) -> str | None:
    """The attribute name a data value induces when promoted, or None.

    NULLs and values rendering to the empty string cannot name a column.
    """
    if is_null(value):
        return None
    text = value_to_text(value)
    return text or None


@dataclass(frozen=True)
class Promote(RelationOperator):
    """↑A→B — promote column A's values to attribute names carrying B's values.

    For every tuple ``t``, a new column named ``t[A]`` is appended with value
    ``t[B]``; tuples that do not define a given new column hold NULL there.
    The promoted relation is "ragged" until a subsequent merge (µ) coalesces
    compatible tuples.

    Attributes:
        relation: relation to transform.
        name_attr: column A whose values become attribute names.
        value_attr: column B whose values populate the new columns.
    """

    relation: str
    name_attr: str
    value_attr: str

    keyword = "promote"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        for attr in (self.name_attr, self.value_attr):
            if not rel.has_attribute(attr):
                raise OperatorApplicationError(
                    f"promote: {self.relation!r} has no attribute {attr!r}"
                )
        name_pos = rel.attribute_position(self.name_attr)
        value_pos = rel.attribute_position(self.value_attr)

        new_columns: list[str] = []
        seen: set[str] = set()
        if caching.columnar_kernel_enabled():
            texts = TEXTS
            for trow in rel.sorted_token_rows():
                token = trow[name_pos]
                if token == NULL_TOKEN:
                    continue
                column = texts[token]
                if column and column not in seen:
                    seen.add(column)
                    new_columns.append(column)
        else:
            for row in rel.sorted_rows():
                column = _column_name_for(row[name_pos])
                if column is not None and column not in seen:
                    seen.add(column)
                    new_columns.append(column)
        if not new_columns:
            raise OperatorApplicationError(
                f"promote: column {self.name_attr!r} of {self.relation!r} has no "
                "promotable values"
            )
        collisions = seen & rel.attribute_set
        if collisions:
            raise OperatorApplicationError(
                f"promote: values {sorted(collisions)} of {self.name_attr!r} collide "
                f"with existing attributes of {self.relation!r}"
            )

        if caching.columnar_kernel_enabled():
            return db.with_relation(
                self._promote_columnar(rel, name_pos, value_pos, new_columns)
            )
        new_rows = []
        for row in rel.rows:
            column = _column_name_for(row[name_pos])
            extension = tuple(
                row[value_pos] if column == new_col else NULL
                for new_col in new_columns
            )
            new_rows.append(row + extension)
        promoted = Relation(
            rel.name, rel.attributes + tuple(new_columns), new_rows
        )
        return db.with_relation(promoted)

    @staticmethod
    def _promote_columnar(
        rel: Relation, name_pos: int, value_pos: int, new_columns: list[str]
    ) -> Relation:
        """Token fast path: build the ragged relation without value tuples."""
        texts = TEXTS
        attrs = rel.attributes + tuple(new_columns)
        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical_attrs = tuple(attrs[i] for i in order)
        column_slot = {column: i for i, column in enumerate(new_columns)}
        null_extension = [NULL_TOKEN] * len(new_columns)
        token_rows: set[TokenRow] = set()
        for trow in rel.token_rows:
            extension = list(null_extension)
            token = trow[name_pos]
            if token != NULL_TOKEN:
                slot = column_slot.get(texts[token])
                if slot is not None:
                    extension[slot] = trow[value_pos]
            tokens = trow + tuple(extension)
            token_rows.add(tuple(tokens[i] for i in order))
        return Relation._from_token_rows(
            rel.name, canonical_attrs, frozenset(token_rows)
        )

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        if not (rel.has_attribute(self.name_attr) and rel.has_attribute(self.value_attr)):
            return False
        names = {
            _column_name_for(v) for v in rel.column_values(self.name_attr)
        } - {None}
        return bool(names) and not (names & set(rel.attributes))

    def __str__(self) -> str:
        return f"promote[{self.relation}]({self.name_attr}; {self.value_attr})"

    def to_unicode(self) -> str:
        return f"↑{{{self.value_attr}}}{{{self.name_attr}}}({self.relation})"


@dataclass(frozen=True)
class Demote(RelationOperator):
    """↓ — demote metadata to data.

    Cartesian product of R with the binary table
    ``{(R.name, a) : a ∈ attributes(R)}`` exposed in reserved columns
    ``$REL`` and ``$ATT``.  Composing with ``→$VAL/$ATT`` (dereference)
    recovers each cell's value, which together express UNPIVOT.
    """

    relation: str

    keyword = "demote"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        for reserved in (DEMOTE_REL_ATTR, DEMOTE_ATT_ATTR):
            if rel.has_attribute(reserved):
                raise OperatorApplicationError(
                    f"demote: {self.relation!r} already has reserved column {reserved!r}"
                )
        attrs = rel.attributes + (DEMOTE_REL_ATTR, DEMOTE_ATT_ATTR)
        if caching.columnar_kernel_enabled():
            order = sorted(range(len(attrs)), key=lambda i: attrs[i])
            canonical_attrs = tuple(attrs[i] for i in order)
            name_token = intern_value(rel.name)
            attr_tokens = [intern_value(a) for a in rel.attributes]
            token_rows: set[TokenRow] = set()
            for trow in rel.token_rows:
                for attr_token in attr_tokens:
                    tokens = trow + (name_token, attr_token)
                    token_rows.add(tuple(tokens[i] for i in order))
            demoted = Relation._from_token_rows(
                rel.name, canonical_attrs, frozenset(token_rows)
            )
            return db.with_relation(demoted)
        new_rows = []
        for row in rel.rows:
            for attr in rel.attributes:
                new_rows.append(row + (rel.name, attr))
        demoted = Relation(rel.name, attrs, new_rows)
        return db.with_relation(demoted)

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        return not (
            rel.has_attribute(DEMOTE_REL_ATTR) or rel.has_attribute(DEMOTE_ATT_ATTR)
        )

    def __str__(self) -> str:
        return f"demote[{self.relation}]()"

    def to_unicode(self) -> str:
        return f"↓({self.relation})"


@dataclass(frozen=True)
class Dereference(RelationOperator):
    """→B/A — append column B with value ``t[t[A]]``.

    ``t[A]`` is read as the *name* of another attribute of the same tuple;
    if it is NULL or not an attribute of R, the new cell is NULL.
    """

    relation: str
    pointer_attr: str
    new_attr: str

    keyword = "deref"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.pointer_attr):
            raise OperatorApplicationError(
                f"deref: {self.relation!r} has no attribute {self.pointer_attr!r}"
            )
        if rel.has_attribute(self.new_attr):
            raise OperatorApplicationError(
                f"deref: {self.relation!r} already has attribute {self.new_attr!r}"
            )

        if caching.columnar_kernel_enabled():
            if not isinstance(self.new_attr, str) or not self.new_attr:
                raise OperatorApplicationError(
                    f"deref: invalid new attribute name {self.new_attr!r}"
                )
            texts = TEXTS
            pointer_pos = rel.attribute_position(self.pointer_attr)
            positions = {attr: i for i, attr in enumerate(rel.attributes)}
            attrs = rel.attributes + (self.new_attr,)
            order = sorted(range(len(attrs)), key=lambda i: attrs[i])
            canonical_attrs = tuple(attrs[i] for i in order)
            token_rows: set[TokenRow] = set()
            for trow in rel.token_rows:
                pointer = trow[pointer_pos]
                if pointer == NULL_TOKEN:
                    new_token = NULL_TOKEN
                else:
                    position = positions.get(texts[pointer])
                    new_token = trow[position] if position is not None else NULL_TOKEN
                tokens = trow + (new_token,)
                token_rows.add(tuple(tokens[i] for i in order))
            extended = Relation._from_token_rows(
                rel.name, canonical_attrs, frozenset(token_rows)
            )
            return db.with_relation(extended)

        def dereference(row_dict: dict[str, Value]) -> Value:
            pointer = row_dict[self.pointer_attr]
            if is_null(pointer):
                return NULL
            name = value_to_text(pointer)
            if name in row_dict:
                return row_dict[name]
            return NULL

        return db.with_relation(rel.extend(self.new_attr, dereference))

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        return rel.has_attribute(self.pointer_attr) and not rel.has_attribute(
            self.new_attr
        )

    def __str__(self) -> str:
        return f"deref[{self.relation}]({self.pointer_attr} -> {self.new_attr})"

    def to_unicode(self) -> str:
        return f"→{{{self.new_attr}}}{{{self.pointer_attr}}}({self.relation})"


@dataclass(frozen=True)
class Partition(RelationOperator):
    """℘A — split R into one relation per value of column A.

    Each non-NULL value ``v`` of A yields a relation named ``v`` holding the
    tuples with ``t[A] = v`` (column A retained; drop it afterwards if the
    target schema does not carry it).  R itself is removed from the database.
    Mapping FlightsB to FlightsC starts with ``℘Carrier``: one relation per
    airline.
    """

    relation: str
    attribute: str

    keyword = "partition"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.attribute):
            raise OperatorApplicationError(
                f"partition: {self.relation!r} has no attribute {self.attribute!r}"
            )
        position = rel.attribute_position(self.attribute)
        if caching.columnar_kernel_enabled():
            texts = TEXTS
            token_groups: dict[str, list[TokenRow]] = {}
            for trow in rel.sorted_token_rows():
                token = trow[position]
                name = texts[token] if token != NULL_TOKEN else ""
                if not name:
                    raise OperatorApplicationError(
                        f"partition: column {self.attribute!r} of {self.relation!r} "
                        "contains values that cannot name a relation"
                    )
                token_groups.setdefault(name, []).append(trow)
            if not token_groups:
                raise OperatorApplicationError(
                    f"partition: relation {self.relation!r} is empty"
                )
            result = db.without_relation(self.relation)
            for name in token_groups:
                if result.has_relation(name):
                    raise OperatorApplicationError(
                        f"partition: partition name {name!r} collides with an "
                        "existing relation"
                    )
            return result.with_relations(
                Relation._from_token_rows(name, rel.attributes, frozenset(rows))
                for name, rows in token_groups.items()
            )
        groups: dict[str, list] = {}
        for row in rel.sorted_rows():
            name = _column_name_for(row[position])
            if name is None:
                raise OperatorApplicationError(
                    f"partition: column {self.attribute!r} of {self.relation!r} "
                    "contains values that cannot name a relation"
                )
            groups.setdefault(name, []).append(row)
        if not groups:
            raise OperatorApplicationError(
                f"partition: relation {self.relation!r} is empty"
            )
        result = db.without_relation(self.relation)
        for name in groups:
            if result.has_relation(name):
                raise OperatorApplicationError(
                    f"partition: partition name {name!r} collides with an existing "
                    "relation"
                )
        return result.with_relations(
            Relation(name, rel.attributes, rows) for name, rows in groups.items()
        )

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        if not rel.has_attribute(self.attribute) or rel.cardinality == 0:
            return False
        names = set()
        for value in rel.column_values(self.attribute, include_null=True):
            name = _column_name_for(value)
            if name is None:
                return False
            names.add(name)
        other_names = set(db.relation_names) - {self.relation}
        return not (names & other_names)

    def __str__(self) -> str:
        return f"partition[{self.relation}]({self.attribute})"

    def to_unicode(self) -> str:
        return f"℘{{{self.attribute}}}({self.relation})"
