"""The λ operator — applying complex semantic functions (paper §4).

``λB f,Ā(R)``: for each tuple of R, apply function ``f`` to the values of
attributes ``Ā`` and place the result in new attribute ``B``.  During search
the function is an opaque symbol (only well-typedness is checked); at
execution time the callable is resolved from a
:class:`~repro.semantics.functions.FunctionRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OperatorApplicationError, UnknownFunctionError
from ..relational.database import Database
from ..relational.types import Value
from ..semantics.correspondence import Correspondence
from ..semantics.functions import FunctionRegistry
from .base import RelationOperator


@dataclass(frozen=True)
class ApplyFunction(RelationOperator):
    """λ — append column *output* = *function*(*inputs*) to a relation.

    Example 6 of the paper:
    ``λTotalCost f3,(Cost, AgentFee)(FlightsB)``.
    """

    relation: str
    function: str
    inputs: tuple[str, ...]
    output: str

    keyword = "apply"

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if not self.inputs:
            raise OperatorApplicationError(
                f"apply: λ operator for {self.function!r} needs at least one input"
            )

    @classmethod
    def from_correspondence(cls, relation: str, corr: Correspondence) -> "ApplyFunction":
        """Instantiate the λ operator a correspondence declares, on *relation*."""
        return cls(relation, corr.function, corr.inputs, corr.output)

    def apply(self, db: Database, registry: FunctionRegistry | None = None) -> Database:
        rel = self._target(db)
        for attr in self.inputs:
            if not rel.has_attribute(attr):
                raise OperatorApplicationError(
                    f"apply: {self.relation!r} has no input attribute {attr!r}"
                )
        if rel.has_attribute(self.output):
            raise OperatorApplicationError(
                f"apply: {self.relation!r} already has attribute {self.output!r}"
            )
        if registry is None:
            raise UnknownFunctionError(self.function)
        fn = registry.get(self.function)
        if fn.arity != len(self.inputs):
            raise OperatorApplicationError(
                f"apply: function {self.function!r} has arity {fn.arity}, "
                f"but {len(self.inputs)} inputs were given"
            )

        def compute(row_dict: dict[str, Value]) -> Value:
            return fn.apply(*(row_dict[attr] for attr in self.inputs))

        return db.with_relation(rel.extend(self.output, compute))

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        rel = db.relation(self.relation)
        return all(rel.has_attribute(a) for a in self.inputs) and not rel.has_attribute(
            self.output
        )

    def __str__(self) -> str:
        args = ", ".join(self.inputs)
        return f"apply[{self.relation}]({self.output} <- {self.function}({args}))"

    def to_unicode(self) -> str:
        args = ", ".join(self.inputs)
        return f"λ{{{self.output}}}{{{self.function},({args})}}({self.relation})"
