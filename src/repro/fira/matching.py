"""Extract a schema matching from a mapping expression (extension).

The paper observes (§2.1) that L "blurs the distinction between schema
matching and schema mapping since L has simple schema matching (i.e.,
finding appropriate renamings via ρ) as a special case".  This module makes
the special case explicit: given a discovered expression, recover the
classical *matching* artifact — correspondences between source and target
schema elements — by tracing how each rename/λ transforms names.

This lets TUPELO's output be consumed by tools that expect match results
(à la the schema-matching systems surveyed in the related work) rather
than executable pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expression import MappingExpression
from .renames import RenameAttribute, RenameRelation
from .semantic import ApplyFunction


@dataclass(frozen=True)
class AttributeMatch:
    """A correspondence between a source attribute and a target attribute.

    ``via`` is ``"rename"`` for 1-1 matches and the function name for
    complex (many-to-one) matches; complex matches carry every source
    attribute in ``source_attributes``.
    """

    source_attributes: tuple[str, ...]
    target_attribute: str
    relation: str
    via: str = "rename"

    def __str__(self) -> str:
        sources = ", ".join(self.source_attributes)
        arrow = "<->" if self.via == "rename" else f"--[{self.via}]->"
        return f"{self.relation}: {sources} {arrow} {self.target_attribute}"


@dataclass(frozen=True)
class RelationMatch:
    """A correspondence between a source and a target relation name."""

    source_relation: str
    target_relation: str

    def __str__(self) -> str:
        return f"{self.source_relation} <-> {self.target_relation}"


@dataclass(frozen=True)
class SchemaMatching:
    """The matching induced by a mapping expression."""

    attribute_matches: tuple[AttributeMatch, ...]
    relation_matches: tuple[RelationMatch, ...]

    def __str__(self) -> str:
        lines = [str(m) for m in self.relation_matches]
        lines += [str(m) for m in self.attribute_matches]
        return "\n".join(lines)

    @property
    def is_pure_matching(self) -> bool:
        """Whether every attribute match is a simple 1-1 rename."""
        return all(m.via == "rename" for m in self.attribute_matches)


def extract_matching(expression: MappingExpression) -> SchemaMatching:
    """Trace renames and λ applications through *expression*.

    Attribute renames are composed transitively (A→Temp then Temp→B yields
    A↔B) and reported against the relation's *original* name even if the
    relation is renamed later in the pipeline.
    """
    # current relation name -> original relation name
    relation_origin: dict[str, str] = {}
    # (original relation, current attribute) -> original source attributes
    attribute_origin: dict[tuple[str, str], tuple[str, ...]] = {}
    attribute_matches: list[AttributeMatch] = []
    lambda_outputs: list[AttributeMatch] = []
    relation_matches: list[RelationMatch] = []

    def origin_of(relation: str) -> str:
        return relation_origin.get(relation, relation)

    def sources_of(relation: str, attribute: str) -> tuple[str, ...]:
        return attribute_origin.get((relation, attribute), (attribute,))

    for op in expression:
        if isinstance(op, RenameRelation):
            relation_origin[op.new] = origin_of(op.old)
            relation_origin.pop(op.old, None)
            # re-key attribute origins to the new current name
            moved = {
                key: value
                for key, value in attribute_origin.items()
                if key[0] == op.old
            }
            for (old_rel, attr), value in moved.items():
                del attribute_origin[(old_rel, attr)]
                attribute_origin[(op.new, attr)] = value
        elif isinstance(op, RenameAttribute):
            sources = sources_of(op.relation, op.old)
            attribute_origin.pop((op.relation, op.old), None)
            attribute_origin[(op.relation, op.new)] = sources
        elif isinstance(op, ApplyFunction):
            sources = tuple(
                source
                for attr in op.inputs
                for source in sources_of(op.relation, attr)
            )
            attribute_origin[(op.relation, op.output)] = sources
            lambda_outputs.append(
                AttributeMatch(
                    source_attributes=sources,
                    target_attribute=op.output,
                    relation=origin_of(op.relation),
                    via=op.function,
                )
            )

    for (relation, attribute), sources in sorted(attribute_origin.items()):
        if sources == (attribute,):
            continue  # identity
        if any(m.target_attribute == attribute and m.relation == origin_of(relation)
               for m in lambda_outputs):
            continue  # reported as a complex match below
        attribute_matches.append(
            AttributeMatch(
                source_attributes=sources,
                target_attribute=attribute,
                relation=origin_of(relation),
            )
        )
    attribute_matches.extend(lambda_outputs)

    for current, original in sorted(relation_origin.items()):
        if current != original:
            relation_matches.append(RelationMatch(original, current))

    return SchemaMatching(
        attribute_matches=tuple(attribute_matches),
        relation_matches=tuple(relation_matches),
    )
