"""Textual syntax for mapping expressions.

Round-trips with ``str(op)`` on every operator.  One operator per line (or
semicolon-separated); blank lines and ``#`` comments are ignored.

Grammar (informal)::

    rename_att[Rel](Old -> New)
    rename_rel(Old -> New)
    drop[Rel](Attr)
    promote[Rel](NameAttr; ValueAttr)
    demote[Rel]()
    deref[Rel](PointerAttr -> NewAttr)
    partition[Rel](Attr)
    product(Left, Right)
    product(Left, Right -> Result)
    merge[Rel](Attr)
    apply[Rel](Out <- fn(In1, In2, ...))
    select[Rel](Attr = 'text')     # or a number, true/false, NULL
"""

from __future__ import annotations

import re

from ..errors import ExpressionParseError
from ..relational.csvio import parse_value
from ..relational.types import Value
from .base import Operator
from .combine import CartesianProduct, Merge
from .dynamic import Demote, Dereference, Partition, Promote
from .expression import MappingExpression
from .renames import RenameAttribute, RenameRelation
from .semantic import ApplyFunction
from .structure import DropAttribute, Select

_NAME = r"[^\[\]();,]+?"

_PATTERNS: list[tuple[re.Pattern[str], object]] = []


def _register(pattern: str):
    def decorator(builder):
        _PATTERNS.append((re.compile(pattern), builder))
        return builder

    return decorator


def _strip(text: str) -> str:
    return text.strip()


@_register(rf"^rename_att\[({_NAME})\]\(({_NAME})->({_NAME})\)$")
def _build_rename_att(m: re.Match[str]) -> Operator:
    return RenameAttribute(_strip(m.group(1)), _strip(m.group(2)), _strip(m.group(3)))


@_register(rf"^rename_rel\(({_NAME})->({_NAME})\)$")
def _build_rename_rel(m: re.Match[str]) -> Operator:
    return RenameRelation(_strip(m.group(1)), _strip(m.group(2)))


@_register(rf"^drop\[({_NAME})\]\(({_NAME})\)$")
def _build_drop(m: re.Match[str]) -> Operator:
    return DropAttribute(_strip(m.group(1)), _strip(m.group(2)))


@_register(rf"^promote\[({_NAME})\]\(({_NAME});({_NAME})\)$")
def _build_promote(m: re.Match[str]) -> Operator:
    return Promote(_strip(m.group(1)), _strip(m.group(2)), _strip(m.group(3)))


@_register(rf"^demote\[({_NAME})\]\(\)$")
def _build_demote(m: re.Match[str]) -> Operator:
    return Demote(_strip(m.group(1)))


@_register(rf"^deref\[({_NAME})\]\(({_NAME})->({_NAME})\)$")
def _build_deref(m: re.Match[str]) -> Operator:
    return Dereference(_strip(m.group(1)), _strip(m.group(2)), _strip(m.group(3)))


@_register(rf"^partition\[({_NAME})\]\(({_NAME})\)$")
def _build_partition(m: re.Match[str]) -> Operator:
    return Partition(_strip(m.group(1)), _strip(m.group(2)))


@_register(rf"^product\(({_NAME}),({_NAME})->({_NAME})\)$")
def _build_product_named(m: re.Match[str]) -> Operator:
    return CartesianProduct(_strip(m.group(1)), _strip(m.group(2)), _strip(m.group(3)))


@_register(rf"^product\(({_NAME}),({_NAME})\)$")
def _build_product(m: re.Match[str]) -> Operator:
    return CartesianProduct(_strip(m.group(1)), _strip(m.group(2)))


@_register(rf"^merge\[({_NAME})\]\(({_NAME})\)$")
def _build_merge(m: re.Match[str]) -> Operator:
    return Merge(_strip(m.group(1)), _strip(m.group(2)))


@_register(rf"^apply\[({_NAME})\]\(({_NAME})<-({_NAME})\((.*)\)\)$")
def _build_apply(m: re.Match[str]) -> Operator:
    inputs = tuple(
        _strip(part) for part in m.group(4).split(",") if _strip(part)
    )
    return ApplyFunction(
        _strip(m.group(1)),
        _strip(m.group(3)),
        inputs,
        _strip(m.group(2)),
    )


@_register(rf"^select\[({_NAME})\]\(({_NAME})=(.+)\)$")
def _build_select(m: re.Match[str]) -> Operator:
    return Select(_strip(m.group(1)), _strip(m.group(2)), _parse_literal(m.group(3)))


def _parse_literal(text: str) -> Value:
    """Parse the right-hand side of a select condition."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return parse_value(text)


def parse_operator(text: str) -> Operator:
    """Parse a single operator line.

    Raises:
        ExpressionParseError: if no operator pattern matches.
    """
    stripped = text.strip()
    for pattern, builder in _PATTERNS:
        match = pattern.match(stripped)
        if match is not None:
            return builder(match)
    raise ExpressionParseError(f"cannot parse operator {stripped!r}", text=text)


def parse_expression(text: str) -> MappingExpression:
    """Parse a multi-line (or ``;``-separated) mapping expression.

    Blank lines and ``#`` comments are skipped.
    """
    operators = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        operators.extend(_parse_line(line))
    return MappingExpression(operators)


def _parse_line(line: str) -> list[Operator]:
    """Parse one physical line, honouring ';' both as an operator separator
    and as the promote argument separator (inside parentheses)."""
    operators = []
    depth = 0
    current: list[str] = []
    for char in line:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == ";" and depth == 0:
            piece = "".join(current).strip()
            if piece:
                operators.append(parse_operator(piece))
            current = []
        else:
            current.append(char)
    piece = "".join(current).strip()
    if piece:
        operators.append(parse_operator(piece))
    return operators
