"""Structural deltas between parent and child search states.

Every L operator transforms a :class:`~repro.relational.database.Database`
by replacing, adding or removing a handful of relations;
``Database.with_relation`` / ``without_relation`` keep every untouched
:class:`~repro.relational.relation.Relation` *object* intact.  A
:class:`StateDelta` exploits that: an identity sweep over the two relation
tuples recovers exactly which relations a step removed and added, in time
linear in the number of relations — no row-level diffing.

The delta is what the incremental-heuristic layer consumes: a child state's
:class:`~repro.relational.summary.DatabaseSummary` is the parent's summary
minus the removed relations' contributions plus the added ones' (see
:meth:`DatabaseSummary.apply_delta`).  The identity diff over-approximates
the value-level diff in the degenerate case where an operator rebuilds a
relation equal to one it replaced; that is still *correct* for summary
arithmetic (subtracting and re-adding an equal contribution is a no-op), so
deltas are always safe to apply.

Column- and cell-level readings of the delta are derived on demand
(:meth:`StateDelta.added_columns`, :meth:`StateDelta.cell_delta`) for
diagnostics and tests; the hot path only ever touches the relation lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.database import Database
from ..relational.relation import Relation


@dataclass(frozen=True)
class StateDelta:
    """Relations removed from the parent state and added by the child."""

    removed: tuple[Relation, ...]
    added: tuple[Relation, ...]

    @staticmethod
    def between(parent: Database, child: Database) -> "StateDelta":
        """The structural delta from *parent* to *child* (identity-based).

        Linear in the number of relations: a relation object present in
        both states (operators pass untouched members through by
        reference) is neither removed nor added.
        """
        child_ids = {id(rel) for rel in child.relations}
        parent_ids = {id(rel) for rel in parent.relations}
        removed = tuple(
            rel for rel in parent.relations if id(rel) not in child_ids
        )
        added = tuple(
            rel for rel in child.relations if id(rel) not in parent_ids
        )
        return StateDelta(removed, added)

    @property
    def is_empty(self) -> bool:
        """True when the step touched no relation at all."""
        return not self.removed and not self.added

    def removed_columns(self) -> frozenset[tuple[str, str]]:
        """(relation, attribute) pairs present before the step but not after."""
        before = {
            (rel.name, attr) for rel in self.removed for attr in rel.attributes
        }
        after = {
            (rel.name, attr) for rel in self.added for attr in rel.attributes
        }
        return frozenset(before - after)

    def added_columns(self) -> frozenset[tuple[str, str]]:
        """(relation, attribute) pairs introduced by the step."""
        before = {
            (rel.name, attr) for rel in self.removed for attr in rel.attributes
        }
        after = {
            (rel.name, attr) for rel in self.added for attr in rel.attributes
        }
        return frozenset(after - before)

    def cell_delta(self) -> int:
        """Net change in stored cell count (arity x cardinality)."""
        return sum(r.arity * r.cardinality for r in self.added) - sum(
            r.arity * r.cardinality for r in self.removed
        )

    def __repr__(self) -> str:
        return (
            f"StateDelta(removed={[r.name for r in self.removed]}, "
            f"added={[r.name for r in self.added]})"
        )
