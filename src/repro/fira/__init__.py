"""The transformation language L (FIRA fragment, Table 1 + λ of §4).

Operators:

========================  =========================================
Paper notation            Class
========================  =========================================
``ρatt X→X'``             :class:`RenameAttribute`
``ρrel X→X'``             :class:`RenameRelation`
``π̄A``                    :class:`DropAttribute`
``↑A→B``                  :class:`Promote`
``↓``                     :class:`Demote`
``→B/A``                  :class:`Dereference`
``℘A``                    :class:`Partition`
``×``                     :class:`CartesianProduct`
``µA``                    :class:`Merge`
``λB f,Ā``                :class:`ApplyFunction`
``σ`` (post-processing)   :class:`Select`
========================  =========================================
"""

from .base import Operator, RelationOperator
from .combine import CartesianProduct, Merge, merge_group, merge_tuples, tuples_compatible
from .dynamic import (
    DEMOTE_ATT_ATTR,
    DEMOTE_REL_ATTR,
    Demote,
    Dereference,
    Partition,
    Promote,
)
from .expression import MappingExpression, equivalent_on, expression_of
from .macros import pivot, unpivot
from .matching import AttributeMatch, RelationMatch, SchemaMatching, extract_matching
from .parser import parse_expression, parse_operator
from .renames import RenameAttribute, RenameRelation
from .semantic import ApplyFunction
from .sqlcompile import SqlScript, compile_expression, compile_operator, compile_script
from .structure import DropAttribute, Select

__all__ = [
    "Operator",
    "RelationOperator",
    "CartesianProduct",
    "Merge",
    "merge_group",
    "merge_tuples",
    "tuples_compatible",
    "DEMOTE_ATT_ATTR",
    "DEMOTE_REL_ATTR",
    "Demote",
    "Dereference",
    "Partition",
    "Promote",
    "MappingExpression",
    "equivalent_on",
    "expression_of",
    "AttributeMatch",
    "RelationMatch",
    "SchemaMatching",
    "extract_matching",
    "pivot",
    "unpivot",
    "parse_expression",
    "parse_operator",
    "RenameAttribute",
    "RenameRelation",
    "ApplyFunction",
    "SqlScript",
    "compile_expression",
    "compile_operator",
    "compile_script",
    "DropAttribute",
    "Select",
]
