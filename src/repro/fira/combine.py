"""Multi-tuple / multi-relation operators: cartesian product (×), merge (µ).

``µA`` is the Wyss–Robertson merge from their PIVOT/UNPIVOT characterisation
(paper reference [40]): tuples sharing a value of A whose remaining columns
are NULL-compatible coalesce into a single tuple.  It is the operator that
collapses the ragged relation produced by ``promote`` back into proper rows
(Example 2, step R3: ``µCarrier``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OperatorApplicationError
from ..relational.database import Database
from ..relational.relation import Relation, Row
from ..relational.types import is_null, value_sort_key
from .base import Operator, RelationOperator


def tuples_compatible(left: Row, right: Row) -> bool:
    """NULL-compatibility: values agree wherever both are non-NULL."""
    return all(
        is_null(a) or is_null(b) or a == b for a, b in zip(left, right)
    )


def merge_tuples(left: Row, right: Row) -> Row:
    """Coalesce two compatible rows, preferring non-NULL values."""
    return tuple(b if is_null(a) else a for a, b in zip(left, right))


def merge_group(rows: list[Row]) -> list[Row]:
    """Greedily merge compatible rows in a group to a fixpoint.

    Deterministic: rows are processed in canonical sorted order and each row
    merges into the first compatible accumulated row.
    """
    ordered = sorted(rows, key=lambda row: tuple(value_sort_key(v) for v in row))
    merged: list[Row] = []
    for row in ordered:
        for i, existing in enumerate(merged):
            if tuples_compatible(existing, row):
                merged[i] = merge_tuples(existing, row)
                break
        else:
            merged.append(row)
    # A merge can unlock further merges (a row compatible with the coalesced
    # value but not with either original); iterate to a fixpoint.
    if len(merged) < len(rows):
        return merge_group(merged)
    return merged


@dataclass(frozen=True)
class Merge(RelationOperator):
    """µA — merge tuples with equal A-values that are NULL-compatible."""

    relation: str
    attribute: str

    keyword = "merge"

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        if not rel.has_attribute(self.attribute):
            raise OperatorApplicationError(
                f"merge: {self.relation!r} has no attribute {self.attribute!r}"
            )
        position = rel.attribute_position(self.attribute)
        groups: dict[object, list[Row]] = {}
        null_rows: list[Row] = []
        for row in rel.rows:
            key = row[position]
            if is_null(key):
                # NULL never equals NULL: such tuples do not participate.
                null_rows.append(row)
            else:
                groups.setdefault(key, []).append(row)
        merged_rows: list[Row] = list(null_rows)
        for key in sorted(groups, key=value_sort_key):
            merged_rows.extend(merge_group(groups[key]))
        return db.with_relation(rel.with_rows(merged_rows))

    def is_applicable(self, db: Database) -> bool:
        if not db.has_relation(self.relation):
            return False
        return db.relation(self.relation).has_attribute(self.attribute)

    def __str__(self) -> str:
        return f"merge[{self.relation}]({self.attribute})"

    def to_unicode(self) -> str:
        return f"µ{{{self.attribute}}}({self.relation})"


@dataclass(frozen=True)
class CartesianProduct(Operator):
    """×(R, S) — cartesian product as a new relation.

    The result is named ``<left>*<right>`` unless *result* is given; the
    operand relations remain in the database (the goal test tolerates
    supersets).  Attribute clashes are disambiguated by qualifying with the
    operand relation names.
    """

    left: str
    right: str
    result: str | None = None

    keyword = "product"

    @property
    def result_name(self) -> str:
        """The name the product relation will carry."""
        return self.result if self.result is not None else f"{self.left}*{self.right}"

    def apply(self, db: Database, registry=None) -> Database:
        for name in (self.left, self.right):
            if not db.has_relation(name):
                raise OperatorApplicationError(
                    f"product: no relation {name!r} in {db!r}"
                )
        if self.left == self.right:
            raise OperatorApplicationError(
                "product: self-product requires distinct operand names "
                f"(got {self.left!r} twice)"
            )
        if db.has_relation(self.result_name):
            raise OperatorApplicationError(
                f"product: result name {self.result_name!r} already in use"
            )
        left_rel = db.relation(self.left)
        right_rel = db.relation(self.right)

        clashes = left_rel.attribute_set & right_rel.attribute_set
        used: set[str] = set()

        def qualified(rel: Relation, attr: str) -> str:
            name = f"{rel.name}.{attr}" if attr in clashes else attr
            candidate, suffix = name, 2
            while candidate in used:  # repeated products can re-clash
                candidate = f"{name}#{suffix}"
                suffix += 1
            used.add(candidate)
            return candidate

        attributes = [qualified(left_rel, a) for a in left_rel.attributes]
        attributes += [qualified(right_rel, a) for a in right_rel.attributes]
        rows = [
            lrow + rrow for lrow in left_rel.rows for rrow in right_rel.rows
        ]
        product = Relation(self.result_name, attributes, rows)
        return db.with_relation(product, replace=False)

    def is_applicable(self, db: Database) -> bool:
        return (
            self.left != self.right
            and db.has_relation(self.left)
            and db.has_relation(self.right)
            and not db.has_relation(self.result_name)
        )

    def __str__(self) -> str:
        if self.result is not None:
            return f"product({self.left}, {self.right} -> {self.result})"
        return f"product({self.left}, {self.right})"

    def to_unicode(self) -> str:
        return f"×({self.left}, {self.right})"
