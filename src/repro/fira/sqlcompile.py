"""Compile mapping expressions to SQL scripts.

TUPELO's output is an executable mapping expression; this module renders one
as a portable SQL script so it can be replayed inside an RDBMS, as the paper
envisions for TNF-based interoperation (§2.2).

The dynamic operators (promote, partition, dereference) create columns and
tables whose *names come from data*, so the emitted SQL is necessarily
instance-directed: the compiler executes the pipeline on the provided source
instance step by step and materialises the dynamic names it observes.  The
script is annotated so a reader can see which statements are
instance-directed.  ``merge`` compiles to a GROUP-BY/MAX coalescing query,
the standard SQL rendering of the Wyss–Robertson merge when each group holds
at most one non-NULL value per column (which promote guarantees).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import OperatorApplicationError
from ..relational.database import Database
from ..relational.sql import quote_identifier, quote_literal
from ..relational.types import is_null, value_to_text
from .base import Operator
from .combine import CartesianProduct, Merge
from .dynamic import DEMOTE_ATT_ATTR, DEMOTE_REL_ATTR, Demote, Dereference, Partition, Promote
from .expression import MappingExpression
from .renames import RenameAttribute, RenameRelation
from .semantic import ApplyFunction
from .structure import DropAttribute, Select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.functions import FunctionRegistry


def _recreate(relation: str, select_body: str) -> list[str]:
    """CREATE-new / DROP-old / RENAME dance replacing *relation* in place."""
    rel = quote_identifier(relation)
    tmp = quote_identifier(relation + "__tupelo_tmp")
    return [
        f"CREATE TABLE {tmp} AS {select_body};",
        f"DROP TABLE {rel};",
        f"ALTER TABLE {tmp} RENAME TO {rel};",
    ]


def compile_operator(op: Operator, db: Database) -> list[str]:
    """SQL statements implementing *op* on a database in the state *db*.

    *db* is the database **before** the operator runs; dynamic operators
    inspect it to materialise data-dependent names.
    """
    if isinstance(op, RenameAttribute):
        return [
            f"ALTER TABLE {quote_identifier(op.relation)} "
            f"RENAME COLUMN {quote_identifier(op.old)} TO {quote_identifier(op.new)};"
        ]
    if isinstance(op, RenameRelation):
        return [
            f"ALTER TABLE {quote_identifier(op.old)} "
            f"RENAME TO {quote_identifier(op.new)};"
        ]
    if isinstance(op, DropAttribute):
        return [
            f"ALTER TABLE {quote_identifier(op.relation)} "
            f"DROP COLUMN {quote_identifier(op.attribute)};"
        ]
    if isinstance(op, Select):
        return [
            f"DELETE FROM {quote_identifier(op.relation)} "
            f"WHERE {quote_identifier(op.attribute)} IS NULL "
            f"OR {quote_identifier(op.attribute)} <> {quote_literal(op.value)};"
            if not is_null(op.value)
            else f"DELETE FROM {quote_identifier(op.relation)} "
            f"WHERE {quote_identifier(op.attribute)} IS NOT NULL;"
        ]
    if isinstance(op, Promote):
        return _compile_promote(op, db)
    if isinstance(op, Demote):
        return _compile_demote(op, db)
    if isinstance(op, Dereference):
        return _compile_dereference(op, db)
    if isinstance(op, Partition):
        return _compile_partition(op, db)
    if isinstance(op, Merge):
        return _compile_merge(op, db)
    if isinstance(op, CartesianProduct):
        return _compile_product(op, db)
    if isinstance(op, ApplyFunction):
        return _compile_apply(op)
    raise OperatorApplicationError(f"no SQL compilation for operator {op!r}")


def _compile_promote(op: Promote, db: Database) -> list[str]:
    rel = db.relation(op.relation)
    name_pos = rel.attribute_position(op.name_attr)
    new_names: list[str] = []
    seen: set[str] = set()
    for row in rel.sorted_rows():
        value = row[name_pos]
        if is_null(value):
            continue
        name = value_to_text(value)
        if name and name not in seen:
            seen.add(name)
            new_names.append(name)
    cases = ", ".join(
        f"CASE WHEN {quote_identifier(op.name_attr)} = {quote_literal(name)} "
        f"THEN {quote_identifier(op.value_attr)} END AS {quote_identifier(name)}"
        for name in new_names
    )
    body = f"SELECT *, {cases} FROM {quote_identifier(op.relation)}"
    return [
        f"-- promote: column names below come from the data of "
        f"{op.name_attr!r} (instance-directed)",
        *_recreate(op.relation, body),
    ]


def _compile_demote(op: Demote, db: Database) -> list[str]:
    rel = db.relation(op.relation)
    values = ", ".join(
        f"({quote_literal(rel.name)}, {quote_literal(attr)})" for attr in rel.attributes
    )
    meta = (
        f"(VALUES {values}) AS __meta"
        f"({quote_identifier(DEMOTE_REL_ATTR)}, {quote_identifier(DEMOTE_ATT_ATTR)})"
    )
    body = (
        f"SELECT {quote_identifier(op.relation)}.*, __meta.* "
        f"FROM {quote_identifier(op.relation)} CROSS JOIN {meta}"
    )
    return _recreate(op.relation, body)


def _compile_dereference(op: Dereference, db: Database) -> list[str]:
    rel = db.relation(op.relation)
    whens = " ".join(
        f"WHEN {quote_identifier(op.pointer_attr)} = {quote_literal(attr)} "
        f"THEN CAST({quote_identifier(attr)} AS TEXT)"
        for attr in rel.attributes
    )
    body = (
        f"SELECT *, CASE {whens} END AS {quote_identifier(op.new_attr)} "
        f"FROM {quote_identifier(op.relation)}"
    )
    return _recreate(op.relation, body)


def _compile_partition(op: Partition, db: Database) -> list[str]:
    rel = db.relation(op.relation)
    pos = rel.attribute_position(op.attribute)
    names: list = []
    seen = set()
    for row in rel.sorted_rows():
        value = row[pos]
        if value not in seen:
            seen.add(value)
            names.append(value)
    statements = [
        f"-- partition: table names below come from the data of "
        f"{op.attribute!r} (instance-directed)"
    ]
    for value in names:
        table = value_to_text(value)
        statements.append(
            f"CREATE TABLE {quote_identifier(table)} AS "
            f"SELECT * FROM {quote_identifier(op.relation)} "
            f"WHERE {quote_identifier(op.attribute)} = {quote_literal(value)};"
        )
    statements.append(f"DROP TABLE {quote_identifier(op.relation)};")
    return statements


def _compile_merge(op: Merge, db: Database) -> list[str]:
    rel = db.relation(op.relation)
    others = [a for a in rel.attributes if a != op.attribute]
    aggregates = ", ".join(
        f"MAX({quote_identifier(a)}) AS {quote_identifier(a)}" for a in others
    )
    body = (
        f"SELECT {quote_identifier(op.attribute)}, {aggregates} "
        f"FROM {quote_identifier(op.relation)} "
        f"GROUP BY {quote_identifier(op.attribute)}"
    )
    return [
        "-- merge: GROUP BY/MAX coalescing assumes one non-NULL value per "
        "column per group (guaranteed after promote)",
        *_recreate(op.relation, body),
    ]


def _compile_product(op: CartesianProduct, db: Database) -> list[str]:
    left = db.relation(op.left)
    right = db.relation(op.right)
    clashes = left.attribute_set & right.attribute_set

    def select_list(rel, alias: str) -> str:
        parts = []
        for attr in rel.attributes:
            name = f"{rel.name}.{attr}" if attr in clashes else attr
            parts.append(f"{alias}.{quote_identifier(attr)} AS {quote_identifier(name)}")
        return ", ".join(parts)

    body = (
        f"SELECT {select_list(left, 'l')}, {select_list(right, 'r')} "
        f"FROM {quote_identifier(op.left)} l CROSS JOIN {quote_identifier(op.right)} r"
    )
    return [f"CREATE TABLE {quote_identifier(op.result_name)} AS {body};"]


def _compile_apply(op: ApplyFunction) -> list[str]:
    args = ", ".join(quote_identifier(a) for a in op.inputs)
    body = (
        f"SELECT *, {op.function}({args}) AS {quote_identifier(op.output)} "
        f"FROM {quote_identifier(op.relation)}"
    )
    return [
        f"-- apply: {op.function!r} must be available as a UDF / stored procedure",
        *_recreate(op.relation, body),
    ]


def compile_expression(
    expression: MappingExpression,
    source: Database,
    registry: "FunctionRegistry | None" = None,
) -> str:
    """Compile a whole pipeline to a SQL script, step by step.

    The pipeline is executed on *source* along the way so that dynamic
    operators can materialise the names they create.
    """
    lines: list[str] = ["-- TUPELO mapping expression compiled to SQL"]
    db = source
    for i, op in enumerate(expression, start=1):
        lines.append(f"-- step {i}: {op}")
        lines.extend(compile_operator(op, db))
        db = op.apply(db, registry)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
