"""Compile mapping expressions to SQL scripts.

TUPELO's output is an executable mapping expression; this module renders one
as a portable SQL script so it can be replayed inside an RDBMS, as the paper
envisions for TNF-based interoperation (§2.2).

The dynamic operators (promote, partition, dereference) create columns and
tables whose *names come from data*, so the emitted SQL is necessarily
instance-directed: the compiler executes the pipeline on the provided source
instance step by step and materialises the dynamic names it observes.  The
script is annotated so a reader can see which statements are
instance-directed.  ``merge`` compiles to a GROUP-BY/MAX coalescing query,
the standard SQL rendering of the Wyss–Robertson merge when each group holds
at most one non-NULL value per column (which promote guarantees).

Emission is split from rendering: this module decides the *statement
sequence* while a :class:`~repro.relational.dialect.SqlDialect` decides how
identifiers, literals, casts, and duplicate handling are spelled for a
concrete engine.  The default dialect reproduces the historical canonical
output byte for byte; bag-semantics dialects (sqlite, duckdb) re-create
tables with ``SELECT DISTINCT`` and compile column drops as DISTINCT
re-creations so executed results stay bit-identical with the in-memory
algebra.  :func:`compile_script` returns a :class:`SqlScript` whose
statement list backends execute one at a time (polling deadline/cancel
between statements); :func:`compile_expression` keeps the annotated-text
form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import OperatorApplicationError
from ..relational.database import Database
from ..relational.dialect import CANONICAL_DIALECT, SqlDialect
from ..relational.types import is_null, value_to_text
from .base import Operator
from .combine import CartesianProduct, Merge
from .dynamic import DEMOTE_ATT_ATTR, DEMOTE_REL_ATTR, Demote, Dereference, Partition, Promote
from .expression import MappingExpression
from .renames import RenameAttribute, RenameRelation
from .semantic import ApplyFunction
from .structure import DropAttribute, Select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.functions import FunctionRegistry


@dataclass(frozen=True)
class SqlScript:
    """A compiled pipeline: executable statements plus the annotated text.

    Attributes:
        dialect: name of the dialect the script was rendered for.
        statements: executable statements only (no comments), one entry
            per statement — the granularity at which backends poll the
            deadline/cancel contract.
        text: the full annotated script (step markers + instance-directed
            commentary), suitable for display and files.
    """

    dialect: str
    statements: tuple[str, ...]
    text: str

    @property
    def statement_count(self) -> int:
        """Number of executable statements."""
        return len(self.statements)

    def __str__(self) -> str:
        return self.text


def is_sql_comment(line: str) -> bool:
    """Whether an emitted line is commentary rather than a statement."""
    return line.lstrip().startswith("--") or not line.strip()


def _recreate(
    relation: str, select_body: str, dialect: SqlDialect
) -> list[str]:
    """CREATE-new / DROP-old / RENAME dance replacing *relation* in place."""
    rel = dialect.quote_identifier(relation)
    tmp = dialect.quote_identifier(relation + "__tupelo_tmp")
    return [
        f"CREATE TABLE {tmp} AS {select_body};",
        f"DROP TABLE {rel};",
        f"ALTER TABLE {tmp} RENAME TO {rel};",
    ]


def compile_operator(
    op: Operator, db: Database, dialect: SqlDialect | None = None
) -> list[str]:
    """SQL statements implementing *op* on a database in the state *db*.

    *db* is the database **before** the operator runs; dynamic operators
    inspect it to materialise data-dependent names.  Comment lines
    (``-- ...``) may be interleaved; filter with :func:`is_sql_comment`
    when executing.
    """
    d = dialect or CANONICAL_DIALECT
    if isinstance(op, RenameAttribute):
        return [
            f"ALTER TABLE {d.quote_identifier(op.relation)} "
            f"RENAME COLUMN {d.quote_identifier(op.old)} TO {d.quote_identifier(op.new)};"
        ]
    if isinstance(op, RenameRelation):
        return [
            f"ALTER TABLE {d.quote_identifier(op.old)} "
            f"RENAME TO {d.quote_identifier(op.new)};"
        ]
    if isinstance(op, DropAttribute):
        return _compile_drop(op, db, d)
    if isinstance(op, Select):
        return [
            f"DELETE FROM {d.quote_identifier(op.relation)} "
            f"WHERE {d.quote_identifier(op.attribute)} IS NULL "
            f"OR {d.quote_identifier(op.attribute)} <> {d.quote_literal(op.value)};"
            if not is_null(op.value)
            else f"DELETE FROM {d.quote_identifier(op.relation)} "
            f"WHERE {d.quote_identifier(op.attribute)} IS NOT NULL;"
        ]
    if isinstance(op, Promote):
        return _compile_promote(op, db, d)
    if isinstance(op, Demote):
        return _compile_demote(op, db, d)
    if isinstance(op, Dereference):
        return _compile_dereference(op, db, d)
    if isinstance(op, Partition):
        return _compile_partition(op, db, d)
    if isinstance(op, Merge):
        return _compile_merge(op, db, d)
    if isinstance(op, CartesianProduct):
        return _compile_product(op, db, d)
    if isinstance(op, ApplyFunction):
        return _compile_apply(op, d)
    raise OperatorApplicationError(f"no SQL compilation for operator {op!r}")


def _compile_drop(op: DropAttribute, db: Database, d: SqlDialect) -> list[str]:
    if d.drop_column_in_place():
        return [
            f"ALTER TABLE {d.quote_identifier(op.relation)} "
            f"DROP COLUMN {d.quote_identifier(op.attribute)};"
        ]
    # Bag-semantics engines: an in-place drop can expose duplicate rows the
    # algebra would collapse, so re-create with SELECT DISTINCT instead.
    rel = db.relation(op.relation)
    remaining = [a for a in rel.attributes if a != op.attribute]
    if not remaining:
        raise OperatorApplicationError(
            f"drop: cannot drop the last attribute of {op.relation!r}"
        )
    cols = ", ".join(d.quote_identifier(a) for a in remaining)
    body = (
        f"SELECT {d.select_modifier()}{cols} "
        f"FROM {d.quote_identifier(op.relation)}"
    )
    return [
        "-- drop: re-created with DISTINCT to preserve set semantics on a "
        "bag-semantics engine",
        *_recreate(op.relation, body, d),
    ]


def _compile_promote(op: Promote, db: Database, d: SqlDialect) -> list[str]:
    rel = db.relation(op.relation)
    name_pos = rel.attribute_position(op.name_attr)
    new_names: list[str] = []
    seen: set[str] = set()
    for row in rel.sorted_rows():
        value = row[name_pos]
        if is_null(value):
            continue
        name = value_to_text(value)
        if name and name not in seen:
            seen.add(name)
            new_names.append(name)
    cases = ", ".join(
        f"CASE WHEN {d.quote_identifier(op.name_attr)} = {d.quote_literal(name)} "
        f"THEN {d.quote_identifier(op.value_attr)} END AS {d.quote_identifier(name)}"
        for name in new_names
    )
    select_list = f"*, {cases}" if cases else "*"
    body = (
        f"SELECT {d.select_modifier()}{select_list} "
        f"FROM {d.quote_identifier(op.relation)}"
    )
    return [
        f"-- promote: column names below come from the data of "
        f"{op.name_attr!r} (instance-directed)",
        *_recreate(op.relation, body, d),
    ]


def _compile_demote(op: Demote, db: Database, d: SqlDialect) -> list[str]:
    rel = db.relation(op.relation)
    meta = d.values_table(
        [(rel.name, attr) for attr in rel.attributes],
        "__meta",
        (DEMOTE_REL_ATTR, DEMOTE_ATT_ATTR),
    )
    body = (
        f"SELECT {d.select_modifier()}{d.quote_identifier(op.relation)}.*, __meta.* "
        f"FROM {d.quote_identifier(op.relation)} CROSS JOIN {meta}"
    )
    return _recreate(op.relation, body, d)


def _compile_dereference(op: Dereference, db: Database, d: SqlDialect) -> list[str]:
    # The pointer cell is read as the *name* of an attribute (its canonical
    # text), but the dereferenced cell keeps its raw typed value — the
    # algebra copies t[t[A]] verbatim, so casting it would break the
    # cross-backend equivalence oracle on non-string columns.
    rel = db.relation(op.relation)
    pointer = d.cast_to_text(d.quote_identifier(op.pointer_attr))
    whens = " ".join(
        f"WHEN {pointer} = {d.quote_literal(attr)} "
        f"THEN {d.quote_identifier(attr)}"
        for attr in rel.attributes
    )
    body = (
        f"SELECT {d.select_modifier()}*, CASE {whens} END "
        f"AS {d.quote_identifier(op.new_attr)} "
        f"FROM {d.quote_identifier(op.relation)}"
    )
    return _recreate(op.relation, body, d)


def _compile_partition(op: Partition, db: Database, d: SqlDialect) -> list[str]:
    rel = db.relation(op.relation)
    pos = rel.attribute_position(op.attribute)
    names: list = []
    seen = set()
    for row in rel.sorted_rows():
        value = row[pos]
        if value not in seen:
            seen.add(value)
            names.append(value)
    statements = [
        f"-- partition: table names below come from the data of "
        f"{op.attribute!r} (instance-directed)"
    ]
    for value in names:
        table = value_to_text(value)
        statements.append(
            f"CREATE TABLE {d.quote_identifier(table)} AS "
            f"SELECT {d.select_modifier()}* FROM {d.quote_identifier(op.relation)} "
            f"WHERE {d.quote_identifier(op.attribute)} = {d.quote_literal(value)};"
        )
    statements.append(f"DROP TABLE {d.quote_identifier(op.relation)};")
    return statements


def _compile_merge(op: Merge, db: Database, d: SqlDialect) -> list[str]:
    # NULL never equals NULL in the merge semantics, so NULL-keyed tuples do
    # not participate: GROUP BY the non-NULL keys and UNION the NULL-keyed
    # rows back in untouched (SQL's GROUP BY would wrongly pool them).
    rel = db.relation(op.relation)
    key = d.quote_identifier(op.attribute)
    others = [a for a in rel.attributes if a != op.attribute]
    aggregates = ", ".join(
        f"MAX({d.quote_identifier(a)}) AS {d.quote_identifier(a)}" for a in others
    )
    passthrough_cols = ", ".join(
        [key, *(d.quote_identifier(a) for a in others)]
    )
    grouped = (
        f"SELECT {key}, {aggregates} "
        f"FROM {d.quote_identifier(op.relation)} "
        f"WHERE {key} IS NOT NULL "
        f"GROUP BY {key}"
    )
    passthrough = (
        f"SELECT {d.select_modifier()}{passthrough_cols} "
        f"FROM {d.quote_identifier(op.relation)} "
        f"WHERE {key} IS NULL"
    )
    body = f"{grouped} UNION ALL {passthrough}"
    return [
        "-- merge: GROUP BY/MAX coalescing assumes one non-NULL value per "
        "column per group (guaranteed after promote); NULL-keyed rows pass "
        "through unmerged",
        *_recreate(op.relation, body, d),
    ]


def _compile_product(op: CartesianProduct, db: Database, d: SqlDialect) -> list[str]:
    left = db.relation(op.left)
    right = db.relation(op.right)
    clashes = left.attribute_set & right.attribute_set

    def select_list(rel, alias: str) -> str:
        parts = []
        for attr in rel.attributes:
            name = f"{rel.name}.{attr}" if attr in clashes else attr
            parts.append(
                f"{alias}.{d.quote_identifier(attr)} AS {d.quote_identifier(name)}"
            )
        return ", ".join(parts)

    body = (
        f"SELECT {d.select_modifier()}{select_list(left, 'l')}, {select_list(right, 'r')} "
        f"FROM {d.quote_identifier(op.left)} l "
        f"CROSS JOIN {d.quote_identifier(op.right)} r"
    )
    return [f"CREATE TABLE {d.quote_identifier(op.result_name)} AS {body};"]


def _compile_apply(op: ApplyFunction, d: SqlDialect) -> list[str]:
    call = d.function_call(
        op.function, [d.quote_identifier(a) for a in op.inputs]
    )
    body = (
        f"SELECT {d.select_modifier()}*, {call} "
        f"AS {d.quote_identifier(op.output)} "
        f"FROM {d.quote_identifier(op.relation)}"
    )
    return [
        f"-- apply: {op.function!r} must be available as a UDF / stored procedure",
        *_recreate(op.relation, body, d),
    ]


def compile_script(
    expression: MappingExpression,
    source: Database,
    registry: "FunctionRegistry | None" = None,
    dialect: SqlDialect | None = None,
) -> SqlScript:
    """Compile a whole pipeline to a :class:`SqlScript`, step by step.

    The pipeline is executed on *source* along the way so that dynamic
    operators can materialise the names they create.
    """
    d = dialect or CANONICAL_DIALECT
    lines: list[str] = ["-- TUPELO mapping expression compiled to SQL"]
    statements: list[str] = []
    db = source
    for i, op in enumerate(expression, start=1):
        lines.append(f"-- step {i}: {op}")
        emitted = compile_operator(op, db, d)
        lines.extend(emitted)
        statements.extend(s for s in emitted if not is_sql_comment(s))
        db = op.apply(db, registry)
        lines.append("")
    text = "\n".join(lines).rstrip() + "\n"
    return SqlScript(dialect=d.name, statements=tuple(statements), text=text)


def compile_expression(
    expression: MappingExpression,
    source: Database,
    registry: "FunctionRegistry | None" = None,
    dialect: SqlDialect | None = None,
) -> str:
    """Compile a whole pipeline to an annotated SQL script (text form)."""
    return compile_script(expression, source, registry, dialect).text
