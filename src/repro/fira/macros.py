"""PIVOT / UNPIVOT macros over the language L.

The Wyss–Robertson papers the language L derives from characterise the
relational PIVOT and UNPIVOT restructurings as compositions of L's
primitive operators.  These helpers build those standard compositions, so
API users can request the whole restructuring in one call while the
resulting :class:`~repro.fira.expression.MappingExpression` stays a plain
pipeline of primitives (searchable, printable, SQL-compilable):

* ``pivot`` — Example 2's core: ``↑name/value`` then drop the two source
  columns, then ``µkey`` to coalesce the ragged tuples;
* ``unpivot`` — the inverse: ``↓`` to demote metadata, ``→`` to fetch each
  named cell, a σ filter keeping only the wanted columns, and drops of the
  scaffolding.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import OperatorApplicationError
from ..relational.database import Database
from .combine import Merge
from .dynamic import DEMOTE_ATT_ATTR, DEMOTE_REL_ATTR, Demote, Dereference, Promote
from .expression import MappingExpression
from .renames import RenameAttribute
from .structure import DropAttribute, Select


def pivot(
    relation: str, key: str, name_attr: str, value_attr: str
) -> MappingExpression:
    """PIVOT: spread *name_attr*'s values into columns holding *value_attr*.

    ``pivot("Prices", key="Carrier", name_attr="Route", value_attr="Cost")``
    is exactly Example 2's R1–R3 prefix: promote, drop the two source
    columns, merge on the key.
    """
    if len({key, name_attr, value_attr}) != 3:
        raise OperatorApplicationError(
            "pivot requires three distinct attributes "
            f"(got key={key!r}, name={name_attr!r}, value={value_attr!r})"
        )
    return MappingExpression(
        [
            Promote(relation, name_attr, value_attr),
            DropAttribute(relation, name_attr),
            DropAttribute(relation, value_attr),
            Merge(relation, key),
        ]
    )


def unpivot(
    relation: str,
    columns: Sequence[str],
    name_attr: str = "ATT",
    value_attr: str = "VAL",
) -> MappingExpression:
    """UNPIVOT: fold *columns* into (*name_attr*, *value_attr*) data rows.

    Composition: demote (``↓``) exposes every attribute name in the
    reserved ``$ATT`` column; dereference fetches the named cell; selection
    keeps only the rows naming one of *columns* (σ is post-processing in
    the paper, which is exactly what this macro is); finally the folded
    source columns and scaffolding are dropped and the reserved columns
    renamed to the requested names.

    Note: like SQL's UNPIVOT, rows whose folded cell is NULL are dropped by
    the dereference+selection combination only if the NULL row's name
    column still matches; NULL cells yield NULL values in *value_attr*.
    """
    columns = list(columns)
    if not columns:
        raise OperatorApplicationError("unpivot requires at least one column")
    operators = [Demote(relation), Dereference(relation, DEMOTE_ATT_ATTR, value_attr)]
    # keep only the rows that name one of the folded columns: a disjunction
    # expressed as per-value selections is not available, so we instead drop
    # the *other* attribute names by selecting each wanted one into place —
    # done with one Select when a single column folds, else via the generic
    # keep-filter below.
    operators.append(_KeepNames(relation, DEMOTE_ATT_ATTR, tuple(columns)))
    for column in columns:
        operators.append(DropAttribute(relation, column))
    operators.append(DropAttribute(relation, DEMOTE_REL_ATTR))
    operators.append(RenameAttribute(relation, DEMOTE_ATT_ATTR, name_attr))
    return MappingExpression(operators)


class _KeepNames(Select):
    """Selection keeping rows whose *attribute* value is in a name set.

    A tiny generalisation of σ (disjunction of equalities) used only by the
    unpivot macro; renders as a comment-friendly textual form and is not
    part of the searched language.
    """

    def __init__(self, relation: str, attribute: str, names: tuple[str, ...]):
        # Select is a frozen dataclass; bypass its __init__ signature
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "value", names)

    def apply(self, db: Database, registry=None) -> Database:
        rel = self._target(db)
        names = set(self.value)
        kept = rel.filter_rows(lambda row: row[self.attribute] in names)
        return db.with_relation(kept)

    def __str__(self) -> str:
        names = ", ".join(self.value)
        return f"# keep rows of {self.relation} where {self.attribute} in {{{names}}}"

    def to_unicode(self) -> str:
        names = " ∨ ".join(f"{self.attribute}={name}" for name in self.value)
        return f"σ{{{names}}}({self.relation})"
