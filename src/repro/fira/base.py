"""Operator abstraction for the transformation language L.

L is the FIRA fragment of Table 1 in the paper: dynamic data-metadata
restructuring operators plus renaming, extended (§4) with the λ operator for
complex semantic functions.  Every operator is an immutable value object
with:

* :meth:`Operator.apply` — a total function from databases to databases
  (raising :class:`~repro.errors.OperatorApplicationError` when genuinely
  inapplicable, e.g. referencing a missing relation);
* :meth:`Operator.is_applicable` — a cheap pre-check used by the search
  successor generator;
* a parseable textual form (``str``) and a paper-style unicode form
  (:meth:`Operator.to_unicode`).

Operators compare and hash by value so that search can deduplicate moves.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..errors import OperatorApplicationError
from ..relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..semantics.functions import FunctionRegistry


class Operator(abc.ABC):
    """Base class for all operators of the language L."""

    #: short machine name used by the textual syntax (e.g. ``"promote"``)
    keyword: str = ""

    @abc.abstractmethod
    def apply(self, db: Database, registry: "FunctionRegistry | None" = None) -> Database:
        """Apply this operator to *db*, returning a new database.

        *registry* is only consulted by the λ operator; structural operators
        ignore it.

        Raises:
            OperatorApplicationError: if the operator cannot be applied
                (missing relation/attribute, name collision, ...).
        """

    def is_applicable(self, db: Database) -> bool:
        """Cheap applicability check (default: try and catch).

        Subclasses override this with a non-constructive check; the default
        is correct but does the full work.
        """
        try:
            self.apply(db)
        except OperatorApplicationError:
            return False
        return True

    def apply_delta(
        self, db: Database, registry: "FunctionRegistry | None" = None
    ) -> "tuple[Database, StateDelta]":
        """Apply this operator, returning the child state *and* its delta.

        The delta is recovered by an identity sweep
        (:meth:`~repro.fira.delta.StateDelta.between`): every operator
        passes untouched relations through by reference, so the sweep is
        linear in the relation count.  Search successor generation threads
        the delta to the incremental-heuristic layer.

        Raises:
            OperatorApplicationError: exactly as :meth:`apply` would.
        """
        from .delta import StateDelta

        child = self.apply(db, registry)
        return child, StateDelta.between(db, child)

    @abc.abstractmethod
    def __str__(self) -> str:
        """Parseable textual form (see :mod:`repro.fira.parser`)."""

    def to_unicode(self) -> str:
        """Paper-style rendering (``↑``, ``ρatt``, ...); defaults to str."""
        return str(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class RelationOperator(Operator):
    """Base for operators that act on a single named relation."""

    relation: str

    def _target(self, db: Database):
        """Fetch the target relation, raising a precise application error."""
        if not db.has_relation(self.relation):
            raise OperatorApplicationError(
                f"{self.keyword}: no relation {self.relation!r} in {db!r}"
            )
        return db.relation(self.relation)

    def is_applicable(self, db: Database) -> bool:
        return db.has_relation(self.relation)
