"""TUPELO — data mapping as heuristic search.

A faithful, from-scratch reproduction of *Data Mapping as Search*
(G.H.L. Fletcher & C.M. Wyss, EDBT 2006).  Given small "critical instances"
illustrating the same information under a source and a target relational
schema, TUPELO searches the space of transformations of the source instance
— under the dynamic relational language L (a FIRA fragment) extended with
complex semantic functions — until it contains the target instance, and
returns the transformation path as an executable mapping expression.

Quickstart::

    from repro import Database, Tupelo

    source = Database.from_dict({"Prices": [
        {"Carrier": "AirEast", "Route": "ATL29", "Cost": 100, "AgentFee": 15},
    ]})
    target = Database.from_dict({"Flights": [
        {"Carrier": "AirEast", "Fee": 15, "ATL29": 100},
    ]})
    result = Tupelo(algorithm="rbfs", heuristic="h1").discover(source, target)
    print(result.expression)          # the discovered pipeline in L
    print(result.stats.states_examined)
"""

from .backends import (
    ExecutionResult,
    Executor,
    SqlBackend,
    available_backends,
    backend_names,
    execute_mapping,
    get_backend,
)
from .errors import (
    BackendError,
    BackendExecutionError,
    BackendUnavailableError,
    BackendUnsupportedError,
    MappingNotFound,
    SearchBudgetExceeded,
    SearchCancelled,
    SearchDeadlineExceeded,
    SearchError,
    SemanticError,
    TransformError,
    TupeloError,
    UnknownBackendError,
)
from .fira import (
    ApplyFunction,
    CartesianProduct,
    Demote,
    Dereference,
    DropAttribute,
    MappingExpression,
    Merge,
    Operator,
    Partition,
    Promote,
    RenameAttribute,
    RenameRelation,
    Select,
    compile_expression,
    expression_of,
    parse_expression,
    parse_operator,
)
from .fira.macros import pivot, unpivot
from .fira.matching import extract_matching
from .heuristics import HEURISTIC_NAMES, PAPER_SCALING_CONSTANTS, make_heuristic
from .instances import align_rows, extract_critical_instances
from .minisql import MiniSqlEngine, run_script
from .relational import (
    NULL,
    Database,
    Relation,
    database_string,
    tnf_decode,
    tnf_encode,
)
from .search import (
    ALGORITHM_NAMES,
    CancelToken,
    MappingProblem,
    SearchConfig,
    SearchResult,
    SearchStats,
    Tupelo,
    discover_mapping,
    simplify_expression,
)
from .parallel import (
    DEFAULT_PORTFOLIO,
    PortfolioResult,
    discover_mapping_portfolio,
    race_table,
)
from .semantics import (
    Correspondence,
    FunctionRegistry,
    SemanticFunction,
    builtin_registry,
)

__version__ = "1.0.0"

__all__ = [
    "BackendError",
    "BackendExecutionError",
    "BackendUnavailableError",
    "BackendUnsupportedError",
    "ExecutionResult",
    "Executor",
    "SqlBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_names",
    "execute_mapping",
    "get_backend",
    "MappingNotFound",
    "SearchBudgetExceeded",
    "SearchCancelled",
    "SearchDeadlineExceeded",
    "SearchError",
    "SemanticError",
    "TransformError",
    "TupeloError",
    "ApplyFunction",
    "CartesianProduct",
    "Demote",
    "Dereference",
    "DropAttribute",
    "MappingExpression",
    "Merge",
    "Operator",
    "Partition",
    "Promote",
    "RenameAttribute",
    "RenameRelation",
    "Select",
    "compile_expression",
    "expression_of",
    "parse_expression",
    "parse_operator",
    "extract_matching",
    "pivot",
    "unpivot",
    "align_rows",
    "extract_critical_instances",
    "MiniSqlEngine",
    "run_script",
    "HEURISTIC_NAMES",
    "PAPER_SCALING_CONSTANTS",
    "make_heuristic",
    "NULL",
    "Database",
    "Relation",
    "database_string",
    "tnf_decode",
    "tnf_encode",
    "ALGORITHM_NAMES",
    "CancelToken",
    "MappingProblem",
    "SearchConfig",
    "SearchResult",
    "SearchStats",
    "Tupelo",
    "discover_mapping",
    "simplify_expression",
    "DEFAULT_PORTFOLIO",
    "PortfolioResult",
    "discover_mapping_portfolio",
    "race_table",
    "Correspondence",
    "FunctionRegistry",
    "SemanticFunction",
    "builtin_registry",
    "__version__",
]
