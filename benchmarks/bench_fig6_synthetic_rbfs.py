"""Figure 6 — RBFS, synthetic schema matching (Experiment 1, §5.1).

Same panels as Fig. 5 but under RBFS.  The paper notes that with RBFS the
normalized Euclidean and Cosine Similarity curves were identical on this
workload; we check they stay within a small factor of each other (our
tuned constants differ slightly from theirs) and that RBFS reproduces the
overall Fig. 5/6 shapes: blind search explodes, informed search is linear.
"""

from __future__ import annotations

import pytest

from repro.experiments import ascii_chart, run_matching_series, series_table
from _bench_utils import bench_budget, record_section

ALGORITHM = "rbfs"
H1_SIZES = tuple(range(2, 33, 3))
H0_SIZES = tuple(range(2, 9))
SCALED_SIZES = tuple(range(2, 9))
SCALED = ("euclid", "euclid_norm", "cosine", "levenshtein")


@pytest.fixture(scope="module")
def panel1():
    h0 = run_matching_series(ALGORITHM, "h0", H0_SIZES, budget=bench_budget())
    h1 = run_matching_series(ALGORITHM, "h1", H1_SIZES, budget=bench_budget())
    return h0, h1


@pytest.fixture(scope="module")
def panel2():
    return [
        run_matching_series(ALGORITHM, name, SCALED_SIZES, budget=50_000)
        for name in SCALED
    ]


def test_fig6_panel1(benchmark, panel1):
    h0, h1 = panel1
    benchmark.pedantic(
        lambda: run_matching_series(ALGORITHM, "h1", (16,)),
        rounds=3,
        iterations=1,
    )
    record_section(
        "Fig. 6 (panel 1) — RBFS, synthetic matching: h0 vs h1",
        series_table([h0, h1], x_label="schema size")
        + "\n\n"
        + ascii_chart([h0, h1], x_label="schema size"),
    )
    h0_states = h0.states()
    assert all(b >= 2 * a for a, b in zip(h0_states[1:4], h0_states[2:5]))
    assert all(p.found for p in h1.points)
    assert h1.states()[-1] <= 3 * 32 + 5  # near-linear in schema size


def test_fig6_panel2(benchmark, panel2):
    benchmark.pedantic(
        lambda: run_matching_series(ALGORITHM, "cosine", (8,), budget=50_000),
        rounds=3,
        iterations=1,
    )
    record_section(
        "Fig. 6 (panel 2) — RBFS, synthetic matching: scaled heuristics",
        series_table(list(panel2), x_label="schema size")
        + "\n\n"
        + ascii_chart(list(panel2), x_label="schema size"),
    )
    by_name = {s.label.split("/")[1]: s for s in panel2}
    # normalized vector heuristics stay cheap across the size range ...
    for name in ("euclid_norm", "cosine"):
        series = by_name[name]
        assert all(p.found for p in series.points), name
        assert series.states()[-1] <= 100
    # ... while raw Euclid and Levenshtein climb steeply (paper's log axis)
    for name in ("euclid", "levenshtein"):
        states = by_name[name].states()
        assert states[-1] > 50 * states[0], name

    # the paper: euclid_norm and cosine behaved identically under RBFS here
    assert by_name["euclid_norm"].states() == by_name["cosine"].states()


def test_fig6_rbfs_beats_blind_ida(benchmark):
    """§5.4: 'RBFS is in general a more effective search algorithm than
    IDA' — compare the blind-search growth on a mid-size task."""
    from repro.experiments import run_matching_series as run

    def both():
        ida = run("ida", "h0", (5,), budget=bench_budget()).states()[0]
        rbfs = run("rbfs", "h0", (5,), budget=bench_budget()).states()[0]
        return ida, rbfs

    ida_states, rbfs_states = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["ida_states"] = ida_states
    benchmark.extra_info["rbfs_states"] = rbfs_states
    assert rbfs_states <= ida_states
