"""Warm-start store — memo hits and pre-seeded searches vs cold discovery.

Runs the paper's Fig. 5 workload (synthetic matching, IDA*/h0, n=6)
through three arms against one ``repro.store.WarmStartStore``:

* **cold** — plain discovery, no store: the baseline every claim divides
  by.
* **warm hit** — the same pair served from the mapping memo, re-verified
  against the live instances.  The headline bar is ≥ 20x over cold, and
  the served expression must be bit-identical to the cold search's.
* **pre-seeded** — the memo is deleted so the engine must *search*, but
  the transposition/goal/heuristic spill is kept: the search runs warm.
  Asserted measurably faster than cold with bit-identical expression
  *and* an identical states-examined count (pre-seeding restores cached
  derivations, not different ones).

Results land in ``BENCH_warm_start.json`` at the repo root and flow
through ``tools/bench_history.py`` when ``REPRO_BENCH_HISTORY`` is set.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_warm_start.py --quick

or through the bench suite: ``pytest benchmarks/bench_warm_start.py
--benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro import discover_mapping
from repro.store import WarmStartStore
from repro.workloads.synthetic import matching_pair

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section, write_bench_json

#: Fig. 5 point the headline is asserted on
HEADLINE_N = 6
QUICK_N = 4
ALGORITHM = "ida"
HEURISTIC = "h0"
BUDGET = 400_000
JSON_NAME = "BENCH_warm_start.json"

#: asserted bars: memo hit ≥ 20x cold; pre-seeded search faster than cold
TARGET_WARM_VS_COLD = 20.0
TARGET_PRESEED_VS_COLD = 1.05
#: re-measure attempts before declaring a bar unmet (minima only improve)
MAX_ATTEMPTS = 3


def _discover(source, target, store=None):
    return discover_mapping(
        source,
        target,
        algorithm=ALGORITHM,
        heuristic=HEURISTIC,
        store=store,
        simplify=False,
    )


def _timed(fn, rounds: int) -> tuple[float, object]:
    """Min-of-rounds wall clock of *fn*; cyclic GC paused around each round."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        try:
            result = fn()
        finally:
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
        best = min(best, elapsed)
    return best, result


def measure_arms(n: int, store_dir: Path, rounds: int = 3) -> dict:
    """One measurement of all three arms on the size-*n* pair."""
    pair = matching_pair(n)
    source, target = pair.source, pair.target

    # cold: no store anywhere near the engine
    cold_secs, cold = _timed(lambda: _discover(source, target), rounds)
    assert cold.found, f"cold search failed at n={n}: {cold.status}"

    # populate the store once (records the memo, spills the tables)
    if store_dir.exists():
        shutil.rmtree(store_dir)
    store = WarmStartStore(store_dir)
    seeded = _discover(source, target, store=store)
    assert seeded.found and not seeded.served_from_store

    # warm hit: served from the memo, verified, bit-identical
    def warm_run():
        result = _discover(source, target, store=WarmStartStore(store_dir))
        assert result.served_from_store, "expected a memo hit"
        return result

    warm_secs, warm = _timed(warm_run, rounds)
    assert str(warm.expression) == str(cold.expression), (
        "served mapping diverged from the cold search's"
    )
    assert warm.states_examined == 0

    # pre-seeded: no memo to serve from, but the spill warms the search
    memo_path = store_dir / "memo.jsonl"

    def preseed_run():
        if memo_path.exists():
            memo_path.unlink()
        result = _discover(source, target, store=WarmStartStore(store_dir))
        assert not result.served_from_store, "memo should be gone"
        return result

    preseed_secs, preseed = _timed(preseed_run, rounds)
    assert str(preseed.expression) == str(cold.expression), (
        "pre-seeded search found a different mapping"
    )
    assert preseed.states_examined == cold.states_examined, (
        f"pre-seeding changed the trajectory: "
        f"{preseed.states_examined} != {cold.states_examined} states"
    )

    return {
        "n": n,
        "states": cold.states_examined,
        "expression_ops": len(cold.expression.operators),
        "cold_secs": cold_secs,
        "warm_secs": warm_secs,
        "preseed_secs": preseed_secs,
        "warm_vs_cold": cold_secs / warm_secs if warm_secs else float("inf"),
        "preseed_vs_cold": (
            cold_secs / preseed_secs if preseed_secs else float("inf")
        ),
    }


def measure_headline(rounds: int = 3) -> dict:
    """The asserted measurement: retry on a noisy box, minima only improve."""
    with tempfile.TemporaryDirectory(prefix="tupelo-bench-store-") as tmp:
        store_dir = Path(tmp) / "store"
        row = measure_arms(HEADLINE_N, store_dir, rounds=rounds)
        for _ in range(MAX_ATTEMPTS - 1):
            if (
                row["warm_vs_cold"] >= TARGET_WARM_VS_COLD
                and row["preseed_vs_cold"] >= TARGET_PRESEED_VS_COLD
            ):
                break
            retry = measure_arms(HEADLINE_N, store_dir, rounds=rounds)
            for key in ("cold_secs", "warm_secs", "preseed_secs"):
                row[key] = min(row[key], retry[key])
            row["warm_vs_cold"] = (
                row["cold_secs"] / row["warm_secs"]
                if row["warm_secs"]
                else float("inf")
            )
            row["preseed_vs_cold"] = (
                row["cold_secs"] / row["preseed_secs"]
                if row["preseed_secs"]
                else float("inf")
            )
    return {
        "workload": {
            "experiment": "Fig. 5 synthetic matching",
            "n": HEADLINE_N,
            "algorithm": ALGORITHM,
            "heuristic": HEURISTIC,
            "budget": BUDGET,
            "rounds": rounds,
        },
        "arms": {
            "cold": {"secs": row["cold_secs"], "states": row["states"]},
            "warm_hit": {"secs": row["warm_secs"], "states": 0},
            "preseeded": {"secs": row["preseed_secs"], "states": row["states"]},
        },
        "headline": {
            "warm_vs_cold": row["warm_vs_cold"],
            "preseed_vs_cold": row["preseed_vs_cold"],
        },
        "targets": {
            "warm_vs_cold": TARGET_WARM_VS_COLD,
            "preseed_vs_cold": TARGET_PRESEED_VS_COLD,
        },
        "bit_identical": True,
        "speedup_asserted": (
            row["warm_vs_cold"] >= TARGET_WARM_VS_COLD
            and row["preseed_vs_cold"] >= TARGET_PRESEED_VS_COLD
        ),
    }


def arms_table(payload: dict) -> str:
    """Render the three arms as an ASCII table."""
    arms = payload["arms"]
    head = payload["headline"]
    rows = [
        ("cold", arms["cold"]["secs"], arms["cold"]["states"], "1.0x"),
        (
            "warm hit",
            arms["warm_hit"]["secs"],
            arms["warm_hit"]["states"],
            f"{head['warm_vs_cold']:.1f}x",
        ),
        (
            "pre-seeded",
            arms["preseeded"]["secs"],
            arms["preseeded"]["states"],
            f"{head['preseed_vs_cold']:.2f}x",
        ),
    ]
    lines = [
        f"warm-start store, Fig. 5 {ALGORITHM}/{HEURISTIC} "
        f"n={payload['workload']['n']}",
        f"{'arm':<12}{'secs':>10}{'states':>8}{'vs cold':>9}",
        f"{'-' * 12}{'-' * 10:>10}{'-' * 8:>8}{'-' * 9:>9}",
    ]
    for name, secs, states, speedup in rows:
        lines.append(f"{name:<12}{secs:>10.4f}{states:>8}{speedup:>9}")
    return "\n".join(lines)


# -- pytest-benchmark entry points -------------------------------------------


def test_warm_start_speedup(benchmark):
    payload = benchmark.pedantic(
        lambda: measure_headline(rounds=2), rounds=1, iterations=1
    )
    head = payload["headline"]
    benchmark.extra_info["warm_vs_cold"] = head["warm_vs_cold"]
    benchmark.extra_info["preseed_vs_cold"] = head["preseed_vs_cold"]
    record_section(
        "Warm-start store — memo hits and pre-seeded searches (Fig. 5 n=6)",
        arms_table(payload)
        + f"\n\nheadline: {head['warm_vs_cold']:.1f}x memo hit "
        f"(target {TARGET_WARM_VS_COLD:.0f}x), "
        f"{head['preseed_vs_cold']:.2f}x pre-seeded "
        f"(target {TARGET_PRESEED_VS_COLD:.2f}x)",
    )
    write_bench_json(Path(__file__).resolve().parent.parent / JSON_NAME, payload)
    assert head["warm_vs_cold"] >= TARGET_WARM_VS_COLD, (
        f"memo hit only {head['warm_vs_cold']:.1f}x over cold "
        f"(target {TARGET_WARM_VS_COLD}x)"
    )
    assert head["preseed_vs_cold"] >= TARGET_PRESEED_VS_COLD, (
        f"pre-seeded search only {head['preseed_vs_cold']:.2f}x over cold "
        f"(target {TARGET_PRESEED_VS_COLD}x)"
    )


def test_warm_start_bit_identity(benchmark):
    # small pair, one round: the asserts inside measure_arms are the test
    def run():
        with tempfile.TemporaryDirectory(prefix="tupelo-bench-store-") as tmp:
            return measure_arms(QUICK_N, Path(tmp) / "store", rounds=1)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["states"] > 0


# -- standalone CLI -----------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure warm-start store speedups vs cold discovery."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small pair, one round, no JSON — CI smoke mode",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timing rounds per arm"
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help=f"skip writing {JSON_NAME}",
    )
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")
    rounds = args.rounds if args.rounds else (1 if args.quick else 3)

    if args.quick:
        with tempfile.TemporaryDirectory(prefix="tupelo-bench-store-") as tmp:
            row = measure_arms(QUICK_N, Path(tmp) / "store", rounds=rounds)
        print(
            f"quick n={QUICK_N}: cold {row['cold_secs']:.4f}s, "
            f"warm hit {row['warm_secs']:.4f}s "
            f"({row['warm_vs_cold']:.1f}x), "
            f"pre-seeded {row['preseed_secs']:.4f}s "
            f"({row['preseed_vs_cold']:.2f}x); bit-identity held"
        )
        return 0

    payload = measure_headline(rounds=rounds)
    print(arms_table(payload))
    print()
    print("bit-identity: served and pre-seeded mappings matched cold search")
    head = payload["headline"]
    print(
        f"headline: {head['warm_vs_cold']:.1f}x memo hit "
        f"(target {TARGET_WARM_VS_COLD:.0f}x), "
        f"{head['preseed_vs_cold']:.2f}x pre-seeded "
        f"(target {TARGET_PRESEED_VS_COLD:.2f}x)"
    )
    if not args.no_json:
        path = write_bench_json(
            Path(__file__).resolve().parent.parent / JSON_NAME, payload
        )
        print(f"wrote {path}")
    if not payload["speedup_asserted"]:
        print("SPEEDUP TARGET NOT MET", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
