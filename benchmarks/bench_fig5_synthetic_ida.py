"""Figure 5 — IDA*, synthetic schema matching (Experiment 1, §5.1).

Regenerates both panels: the left panel (h0 vs h1, schema sizes up to 32;
the paper's h0 curve ends at the 10^6 cut, ours at REPRO_BENCH_BUDGET) and
the right panel (Euclid, normalized Euclid, Cosine, Levenshtein, sizes up
to 8).  The paper notes h2 performed identically to h0 and h3 to h1 on this
workload; we assert those equivalences instead of re-plotting them.

Expected shape (paper): h0 blows up exponentially and is cut off early;
h1/h3 stay low (near-linear); the scaled heuristics solve all sizes <= 8.
"""

from __future__ import annotations

import pytest

from repro.experiments import ascii_chart, run_matching_series, series_table

from _bench_utils import bench_budget, record_section

ALGORITHM = "ida"
H1_SIZES = tuple(range(2, 33, 3))
H0_SIZES = tuple(range(2, 9))
SCALED_SIZES = tuple(range(2, 9))
SCALED = ("euclid", "euclid_norm", "cosine", "levenshtein")


@pytest.fixture(scope="module")
def panel1():
    h0 = run_matching_series(ALGORITHM, "h0", H0_SIZES, budget=bench_budget())
    h1 = run_matching_series(ALGORITHM, "h1", H1_SIZES, budget=bench_budget())
    return h0, h1


@pytest.fixture(scope="module")
def panel2():
    return [
        run_matching_series(ALGORITHM, name, SCALED_SIZES, budget=50_000)
        for name in SCALED
    ]


def test_fig5_panel1(benchmark, panel1):
    h0, h1 = panel1
    # time the largest still-cheap representative search
    benchmark.pedantic(
        lambda: run_matching_series(ALGORITHM, "h1", (16,)),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["h1_states_n32"] = h1.states()[-1]

    record_section(
        "Fig. 5 (panel 1) — IDA, synthetic matching: h0 vs h1",
        series_table([h0, h1], x_label="schema size")
        + "\n\n"
        + ascii_chart([h0, h1], x_label="schema size"),
    )
    # shape: h0 superlinear growth then cut; h1 ~ n+1
    h0_states = h0.states()
    assert all(b >= 2 * a for a, b in zip(h0_states[1:4], h0_states[2:5]))
    assert not h0.points[-1].found or h0_states[-1] > 10_000
    assert all(
        p.states == p.x + 1 for p in h1.points
    ), "IDA/h1 should walk straight to the goal"


def test_fig5_panel2(benchmark, panel2):
    benchmark.pedantic(
        lambda: run_matching_series(ALGORITHM, "cosine", (8,), budget=50_000),
        rounds=3,
        iterations=1,
    )
    record_section(
        "Fig. 5 (panel 2) — IDA, synthetic matching: scaled heuristics",
        series_table(list(panel2), x_label="schema size")
        + "\n\n"
        + ascii_chart(list(panel2), x_label="schema size"),
    )
    by_name = {s.label.split("/")[1]: s for s in panel2}
    # under IDA every scaled curve eventually climbs (the paper's right
    # panel runs up its log axis); normalized Euclid is the best behaved
    norm = by_name["euclid_norm"]
    assert all(p.found for p in norm.points)
    assert norm.states()[-1] <= 1_000
    for name in ("euclid", "cosine", "levenshtein"):
        states = by_name[name].states()
        assert states[-1] > 50 * states[0], name
    # euclid_norm dominates the other scaled heuristics at the largest size
    assert norm.states()[-1] <= min(
        by_name[name].states()[-1]
        for name in ("euclid", "cosine", "levenshtein")
    )


def test_fig5_noted_equivalences(benchmark):
    """'Heuristic h2 performed identically to h0, and heuristic h3's
    performance was identical to h1' (§5.1)."""

    def run_all():
        out = {}
        for name in ("h0", "h1", "h2", "h3"):
            out[name] = run_matching_series(
                ALGORITHM, name, (2, 3, 4), budget=bench_budget()
            ).states()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert results["h2"] == results["h0"]
    assert results["h3"] == results["h1"]
