"""Fig. 1 / Example 2 — data-metadata restructuring on the Flights scenario.

The paper's §5.4 notes TUPELO "has also been validated and shown effective
for examples involving the data-metadata restructurings illustrated in
Fig. 1", and that on that workload "no particular heuristic had
consistently superior performance".  This bench regenerates that
validation: states examined for discovering FlightsB -> FlightsA (promote/
drop/merge/rename) and FlightsB -> FlightsC (λ + partition) under both
algorithms and every heuristic.
"""

from __future__ import annotations

import pytest

from repro import SearchConfig, discover_mapping
from repro.experiments import ascii_table
from repro.heuristics import HEURISTIC_NAMES
from repro.workloads import (
    flights_a,
    flights_b,
    flights_c,
    flights_registry,
    total_cost_correspondence,
)

from _bench_utils import record_section

BUDGET = 60_000


def _run_b_to_a(algorithm, heuristic):
    return discover_mapping(
        flights_b(),
        flights_a(),
        algorithm=algorithm,
        heuristic=heuristic,
        config=SearchConfig(max_states=BUDGET),
        simplify=False,
    )


def _run_b_to_c(algorithm, heuristic):
    return discover_mapping(
        flights_b(),
        flights_c(),
        algorithm=algorithm,
        heuristic=heuristic,
        correspondences=[total_cost_correspondence()],
        registry=flights_registry(),
        config=SearchConfig(max_states=BUDGET),
        simplify=False,
    )


@pytest.fixture(scope="module")
def grid():
    rows = []
    outcomes = {}
    for heuristic in HEURISTIC_NAMES:
        row = [heuristic]
        for label, runner in (("B->A", _run_b_to_a), ("B->C", _run_b_to_c)):
            for algorithm in ("ida", "rbfs"):
                result = runner(algorithm, heuristic)
                outcomes[(label, algorithm, heuristic)] = result
                row.append(
                    result.states_examined
                    if result.found
                    else f">{result.states_examined - 1}"
                )
        rows.append(row)
    return rows, outcomes


def test_flights_b_to_a(benchmark, grid):
    rows, outcomes = grid
    benchmark.pedantic(
        lambda: _run_b_to_a("rbfs", "euclid_norm"), rounds=3, iterations=1
    )
    record_section(
        "Fig. 1 restructurings — states examined "
        "(columns: B->A ida, B->A rbfs, B->C ida, B->C rbfs)",
        ascii_table(
            ["heuristic", "B->A ida", "B->A rbfs", "B->C ida", "B->C rbfs"],
            rows,
        ),
    )
    # every informed heuristic must discover the promote/merge pipeline
    for heuristic in ("h1", "h3", "euclid_norm", "cosine", "levenshtein"):
        for algorithm in ("ida", "rbfs"):
            result = outcomes[("B->A", algorithm, heuristic)]
            assert result.found, (heuristic, algorithm)
            mapped = result.expression.apply(flights_b())
            assert mapped.contains(flights_a())


def test_flights_b_to_c(benchmark, grid):
    _rows, outcomes = grid
    benchmark.pedantic(
        lambda: _run_b_to_c("rbfs", "h1"), rounds=3, iterations=1
    )
    for heuristic in ("h1", "h3", "euclid_norm", "cosine"):
        for algorithm in ("ida", "rbfs"):
            result = outcomes[("B->C", algorithm, heuristic)]
            assert result.found, (heuristic, algorithm)
            mapped = result.expression.apply(flights_b(), flights_registry())
            assert mapped.contains(flights_c())


def test_no_heuristic_dominates_here(grid, benchmark):
    """§5.4: on the restructuring workload no heuristic consistently wins —
    check that the best heuristic differs across the four task/algorithm
    columns (or at least that the set-based and vector families trade
    places)."""
    _rows, outcomes = grid
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    winners = set()
    for label in ("B->A", "B->C"):
        for algorithm in ("ida", "rbfs"):
            found = {
                heuristic: outcomes[(label, algorithm, heuristic)]
                for heuristic in HEURISTIC_NAMES
                if outcomes[(label, algorithm, heuristic)].found
            }
            winner = min(found, key=lambda h: found[h].states_examined)
            winners.add(winner)
    assert len(winners) >= 2
