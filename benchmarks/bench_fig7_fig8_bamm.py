"""Figures 7 & 8 — BAMM deep-web schema matching (Experiment 2, §5.2).

Fig. 7(a)/(b): average states examined per domain (Books, Automobiles,
Music, Movies) for all eight heuristics, under IDA and RBFS.
Fig. 8: the same averages aggregated across all four domains.

Expected shape (paper): h0 worst (hundreds to ~1000); the term-vector
heuristics (cosine, normalized Euclid) best; RBFS typically examines fewer
states than IDA.

The corpus is our synthetic BAMM stand-in (see DESIGN.md); set
``REPRO_BAMM_LIMIT=0`` to sweep every interface like the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    average_states,
    averages_table,
    run_bamm_domain,
)
from repro.heuristics import HEURISTIC_NAMES
from repro.workloads import DOMAIN_NAMES, bamm_corpus

from _bench_utils import bamm_limit, record_section

BUDGET = 60_000


@pytest.fixture(scope="module")
def corpus():
    return bamm_corpus()


@pytest.fixture(scope="module")
def averages(corpus):
    """{algorithm: {heuristic: {domain: avg states}}} for the whole grid."""
    limit = bamm_limit()
    grid: dict[str, dict[str, dict[str, float]]] = {}
    for algorithm in ("ida", "rbfs"):
        grid[algorithm] = {}
        for heuristic in HEURISTIC_NAMES:
            grid[algorithm][heuristic] = {
                name: average_states(
                    run_bamm_domain(
                        algorithm,
                        heuristic,
                        corpus[name],
                        budget=BUDGET,
                        limit=limit,
                    )
                )
                for name in DOMAIN_NAMES
            }
    return grid


def test_fig7a_ida_per_domain(benchmark, averages, corpus):
    benchmark.pedantic(
        lambda: run_bamm_domain("ida", "cosine", corpus["Books"], limit=8),
        rounds=1,
        iterations=1,
    )
    record_section(
        "Fig. 7(a) — IDA, avg states per BAMM domain",
        averages_table(averages["ida"]),
    )
    ida = averages["ida"]
    for domain in DOMAIN_NAMES:
        assert ida["cosine"][domain] <= ida["h0"][domain]
        assert ida["euclid_norm"][domain] <= ida["h0"][domain]


def test_fig7b_rbfs_per_domain(benchmark, averages, corpus):
    benchmark.pedantic(
        lambda: run_bamm_domain("rbfs", "cosine", corpus["Books"], limit=8),
        rounds=1,
        iterations=1,
    )
    record_section(
        "Fig. 7(b) — RBFS, avg states per BAMM domain",
        averages_table(averages["rbfs"]),
    )
    rbfs = averages["rbfs"]
    for domain in DOMAIN_NAMES:
        assert rbfs["cosine"][domain] <= rbfs["h0"][domain]
        assert rbfs["euclid_norm"][domain] <= rbfs["h1"][domain]


def test_bamm_matchings_are_correct(benchmark, corpus):
    """The paper's premise behind Figs. 7/8: the discovered mappings are the
    *correct* matchings.  Verify against the generator's gold pairs."""
    from repro import discover_mapping
    from repro.experiments import evaluate_matching

    def check():
        perfect = total = 0
        for domain in corpus.values():
            for task in domain.tasks[: (bamm_limit() or len(domain.tasks))]:
                result = discover_mapping(
                    task.source, task.target, heuristic="euclid_norm"
                )
                total += 1
                if result.found and evaluate_matching(task, result.expression).perfect:
                    perfect += 1
        return perfect, total

    perfect, total = benchmark.pedantic(check, rounds=1, iterations=1)
    record_section(
        "Fig. 7/8 premise — matching correctness (RBFS/euclid_norm)",
        f"{perfect}/{total} interfaces matched exactly against gold",
    )
    assert perfect == total


def test_fig8_overall_averages(benchmark, averages):
    def aggregate():
        overall: dict[str, dict[str, float]] = {}
        for heuristic in HEURISTIC_NAMES:
            overall[heuristic] = {}
            for algorithm in ("ida", "rbfs"):
                per_domain = averages[algorithm][heuristic]
                overall[heuristic][algorithm.upper()] = sum(
                    per_domain.values()
                ) / len(per_domain)
        return overall

    overall = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    record_section(
        "Fig. 8 — avg states across all BAMM domains (IDA vs RBFS)",
        averages_table(overall),
    )
    # paper's headline findings:
    # (1) cosine and normalized Euclid are among the best performers overall
    top_four = set(sorted(overall, key=lambda h: overall[h]["RBFS"])[:4])
    assert {"cosine", "euclid_norm"} <= top_four
    # (2) RBFS examines fewer states than IDA for the blind baseline
    assert overall["h0"]["RBFS"] <= overall["h0"]["IDA"]
    # (3) every informed heuristic beats blind search on average
    for heuristic in ("h1", "h3", "euclid_norm", "cosine", "levenshtein"):
        assert overall[heuristic]["RBFS"] <= overall["h0"]["RBFS"]
