"""Ablation — the §2.3 "simple enhancements to search".

The paper disregards "obviously inapplicable" transformations during
successor generation.  Our implementation splits that into two switches:

* ``prune_targets`` — propose an operator only if it can supply a missing
  target token;
* ``break_symmetry`` — canonicalise runs of commuting operators (renames /
  drops / λ) so equivalent orderings are explored once.

This bench measures each switch's contribution on small matching tasks
under *blind* search (h0) — informed heuristics mask the enhancements by
walking straight to the goal, whereas h0 exposes the full ordering
explosion the enhancements exist to cut.  Kept small: the naive
configuration explodes quickly.
"""

from __future__ import annotations

import pytest

from repro import SearchConfig, discover_mapping
from repro.experiments import ascii_table
from repro.workloads import matching_pair

from _bench_utils import record_section

BUDGET = 150_000

CONFIGS = (
    ("full pruning", True, True),
    ("no symmetry breaking", True, False),
    ("no target pruning", False, True),
    ("naive (both off)", False, False),
)


def _run(n, prune, symmetry, heuristic="h0"):
    pair = matching_pair(n)
    return discover_mapping(
        pair.source,
        pair.target,
        algorithm="ida",
        heuristic=heuristic,
        config=SearchConfig(
            max_states=BUDGET,
            prune_targets=prune,
            break_symmetry=symmetry,
        ),
        simplify=False,
    )


@pytest.fixture(scope="module")
def grid():
    results = {}
    for label, prune, symmetry in CONFIGS:
        for n in (3, 4):
            results[(label, n)] = _run(n, prune, symmetry)
    return results


def test_ablation_pruning(benchmark, grid):
    benchmark.pedantic(lambda: _run(4, True, True), rounds=3, iterations=1)
    rows = []
    for label, _p, _s in CONFIGS:
        rows.append(
            [
                label,
                *(
                    grid[(label, n)].states_examined
                    if grid[(label, n)].found
                    else "cutoff"
                    for n in (3, 4)
                ),
            ]
        )
    record_section(
        "Ablation — §2.3 search enhancements (IDA/h0, matching n=3,4)",
        ascii_table(["configuration", "n=3", "n=4"], rows),
    )
    # full pruning dominates every ablated configuration
    for n in (3, 4):
        full = grid[("full pruning", n)]
        assert full.found
        for label, _p, _s in CONFIGS[1:]:
            other = grid[(label, n)]
            if other.found:
                assert full.states_examined <= other.states_examined

    # symmetry breaking is the big lever: without it the same multiset of
    # renames is explored in factorially many orders
    with_sym = grid[("full pruning", 4)].states_examined
    without_sym = grid[("no symmetry breaking", 4)]
    assert (not without_sym.found) or (
        without_sym.states_examined >= 2 * with_sym
    )


def test_ablation_correctness_preserved(benchmark, grid):
    """Ablated searches that finish still produce correct mappings."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for (label, n), result in grid.items():
        if result.found:
            pair = matching_pair(n)
            assert result.expression.apply(pair.source).contains(pair.target), (
                label,
                n,
            )
