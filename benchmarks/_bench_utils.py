"""Helpers shared by the figure-regeneration benches.

Environment knobs:

* ``REPRO_BAMM_LIMIT`` — interfaces per BAMM domain (default 24; <=0 means
  the full corpus, as the paper swept it).
* ``REPRO_BENCH_BUDGET`` — state budget for cut-off-prone runs
  (default 200000; the paper's plots cut at 10^6).
* ``REPRO_BENCH_HISTORY`` — when set, every :func:`write_bench_json` call
  also appends the payload's tracked headline metrics to this history
  file (see ``tools/bench_history.py``), so perf numbers accumulate a
  regression-checkable record as a side effect of running the benches.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.serialize import json_dumps_indent2

_SECTIONS: list[tuple[str, str]] = []


def record_section(title: str, body: str) -> None:
    """Register an ASCII table/section for the end-of-run summary."""
    _SECTIONS.append((title, body))


def sections() -> list[tuple[str, str]]:
    """All sections recorded so far."""
    return list(_SECTIONS)


def bamm_limit() -> int | None:
    """Interfaces per BAMM domain to evaluate (None = full domain)."""
    value = int(os.environ.get("REPRO_BAMM_LIMIT", "24"))
    return None if value <= 0 else value


def bench_budget() -> int:
    """State budget for blind/cut-off-prone searches."""
    return int(os.environ.get("REPRO_BENCH_BUDGET", "200000"))


def _bench_history_module():
    """Load ``tools/bench_history.py`` (a script, not a package) by path."""
    import importlib.util

    tools = Path(__file__).resolve().parent.parent / "tools" / "bench_history.py"
    spec = importlib.util.spec_from_file_location("bench_history", tools)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Persist a bench result payload as stable, diff-friendly JSON.

    Benches that publish machine-readable results (``BENCH_*.json`` at the
    repo root) write through here so every file gets the same formatting:
    sorted keys, two-space indent, trailing newline.  With
    ``REPRO_BENCH_HISTORY`` set, tracked headline metrics are also appended
    to that history file — best-effort: a broken history append warns but
    never fails the bench that produced the result.
    """
    path = Path(path)
    path.write_text(json_dumps_indent2(payload) + "\n")
    history = os.environ.get("REPRO_BENCH_HISTORY")
    if history:
        try:
            bench_history = _bench_history_module()
            name = bench_history.bench_name(path)
            if name in bench_history.TRACKED_METRICS:
                metrics = bench_history.extract_metrics(name, payload)
                if metrics:
                    bench_history.append_history(
                        history, name, metrics, source=str(path)
                    )
        except Exception as exc:  # noqa: BLE001 - history is best-effort
            print(
                f"warning: could not append {path} to bench history "
                f"{history}: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
    return path
