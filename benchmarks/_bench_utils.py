"""Helpers shared by the figure-regeneration benches.

Environment knobs:

* ``REPRO_BAMM_LIMIT`` — interfaces per BAMM domain (default 24; <=0 means
  the full corpus, as the paper swept it).
* ``REPRO_BENCH_BUDGET`` — state budget for cut-off-prone runs
  (default 200000; the paper's plots cut at 10^6).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.serialize import json_dumps_indent2

_SECTIONS: list[tuple[str, str]] = []


def record_section(title: str, body: str) -> None:
    """Register an ASCII table/section for the end-of-run summary."""
    _SECTIONS.append((title, body))


def sections() -> list[tuple[str, str]]:
    """All sections recorded so far."""
    return list(_SECTIONS)


def bamm_limit() -> int | None:
    """Interfaces per BAMM domain to evaluate (None = full domain)."""
    value = int(os.environ.get("REPRO_BAMM_LIMIT", "24"))
    return None if value <= 0 else value


def bench_budget() -> int:
    """State budget for blind/cut-off-prone searches."""
    return int(os.environ.get("REPRO_BENCH_BUDGET", "200000"))


def write_bench_json(path: str | Path, payload: dict) -> Path:
    """Persist a bench result payload as stable, diff-friendly JSON.

    Benches that publish machine-readable results (``BENCH_*.json`` at the
    repo root) write through here so every file gets the same formatting:
    sorted keys, two-space indent, trailing newline.
    """
    path = Path(path)
    path.write_text(json_dumps_indent2(payload) + "\n")
    return path
