"""Parallel fan-out scaling — serial vs 2 and 4 workers on the Fig. 5 grid.

Runs the blind (IDA*/h0) synthetic matching sweep three times —
``workers=0`` (the untouched serial path), ``workers=2`` and ``workers=4``
— and reports wall-clock, speedup, and per-arm point counts.  The grid
repeats each size several times ("trials"): a single Fig. 5 sweep is
dominated by its largest size, so a trial-less grid cannot scale no matter
how many workers it gets, while repeated sizes deal out round-robin into
balanced chunks.  Two properties are checked:

* **Bit-identity (always asserted).**  Every parallel arm's series must
  normalize to exactly the serial series — states, statuses, expression
  sizes, and all cache counters included.  This is the determinism
  contract of :mod:`repro.parallel.fanout` and it must hold on any
  machine, loaded or not.
* **Speedup (asserted only with enough CPUs).**  The acceptance bar is a
  >= 2.5x speedup with 4 workers, which a 1- or 2-core container cannot
  physically exhibit; the assertion is gated on ``cpu_count() >= 4`` and
  the measured ratio is recorded honestly either way.

Results land in ``BENCH_parallel_scaling.json`` at the repo root (CPU
count, start method, per-arm wall-clock and speedups).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick

or through the bench suite: ``pytest benchmarks/bench_parallel_scaling.py
--benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.experiments.runner import ExperimentSeries, run_matching_series
from repro.experiments.report import ascii_table
from repro.parallel import normalize_series
from repro.parallel.pool import cpu_count, preferred_start_method

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section, write_bench_json

ALGORITHM = "ida"
#: blind search — the arm with real per-point work (h1 solves these in ms)
HEURISTIC = "h0"
#: the Fig. 5 grid with trials: 4x size 6 (~3.5 s each) + 4x size 5
HEADLINE_SIZES = (6,) * 4 + (5,) * 4
QUICK_SIZES = (5,) * 2 + (4,) * 2
BUDGET = 400_000
WORKER_ARMS = (2, 4)
#: acceptance bar for the 4-worker arm — only meaningful with >= 4 CPUs
TARGET_SPEEDUP = 2.5
JSON_NAME = "BENCH_parallel_scaling.json"


def _timed_sweep(
    sizes: Sequence[int], workers: int, rounds: int
) -> tuple[float, ExperimentSeries]:
    """Min-of-rounds wall clock for one sweep arm (GC paused per round)."""
    best = float("inf")
    series: ExperimentSeries | None = None
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            series = run_matching_series(
                ALGORITHM,
                HEURISTIC,
                sizes,
                budget=BUDGET,
                workers=workers,
            )
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    assert series is not None
    return best, series


def measure_scaling(sizes: Sequence[int], rounds: int = 1) -> dict:
    """The scaling sweep: serial baseline plus one row per worker arm."""
    serial_secs, serial_series = _timed_sweep(sizes, 0, rounds)
    serial_normal = normalize_series(serial_series)
    arms = {
        "serial": {
            "workers": 0,
            "wall_seconds": serial_secs,
            "points": len(serial_series.points),
            "speedup": 1.0,
        }
    }
    for workers in WORKER_ARMS:
        wall, series = _timed_sweep(sizes, workers, rounds)
        if normalize_series(series) != serial_normal:
            raise AssertionError(
                f"workers={workers} broke the determinism contract: "
                f"parallel series differs from serial"
            )
        arms[f"workers_{workers}"] = {
            "workers": workers,
            "wall_seconds": wall,
            "points": len(series.points),
            "speedup": serial_secs / wall if wall else float("inf"),
        }
    return {
        "workload": {
            "algorithm": ALGORITHM,
            "heuristic": HEURISTIC,
            "sizes": list(sizes),
            "budget": BUDGET,
            "rounds": rounds,
        },
        "machine": {
            "cpu_count": cpu_count(),
            "start_method": preferred_start_method(),
        },
        "arms": arms,
        "bit_identical": True,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_asserted": cpu_count() >= 4,
    }


def scaling_table(payload: dict) -> str:
    """Render the sweep as an ASCII table."""
    rows = [
        [
            name,
            arm["workers"],
            arm["points"],
            f"{arm['wall_seconds']:.3f}",
            f"{arm['speedup']:.2f}x",
        ]
        for name, arm in payload["arms"].items()
    ]
    machine = payload["machine"]
    workload = payload["workload"]
    title = (
        f"parallel fan-out scaling — {workload['algorithm']}/"
        f"{workload['heuristic']}, sizes {workload['sizes']} "
        f"({machine['cpu_count']} cpu(s), {machine['start_method']})"
    )
    return ascii_table(
        ["arm", "workers", "points", "wall (s)", "speedup"], rows, title=title
    )


def check_acceptance(payload: dict) -> None:
    """Assert the speedup bar when the machine can physically meet it."""
    if not payload["speedup_asserted"]:
        return
    speedup = payload["arms"]["workers_4"]["speedup"]
    if speedup < TARGET_SPEEDUP:
        raise AssertionError(
            f"4-worker speedup {speedup:.2f}x below the "
            f"{TARGET_SPEEDUP}x bar on a {payload['machine']['cpu_count']}-cpu "
            f"machine"
        )


def run_bench(sizes: Sequence[int], rounds: int, json_path: Path | None) -> dict:
    payload = measure_scaling(sizes, rounds)
    table = scaling_table(payload)
    record_section("Parallel fan-out scaling (serial vs 2/4 workers)", table)
    print(table)
    check_acceptance(payload)
    if not payload["speedup_asserted"]:
        print(
            f"\nnote: speedup bar ({TARGET_SPEEDUP}x @ 4 workers) not asserted "
            f"on a {payload['machine']['cpu_count']}-cpu machine; "
            "bit-identity checked on every arm"
        )
    if json_path is not None:
        write_bench_json(json_path, payload)
        print(f"results written to {json_path}")
    return payload


# -- pytest integration -------------------------------------------------------


def test_parallel_scaling(benchmark):
    """Bench-suite entry: time the 2-worker sweep, assert bit-identity."""
    sizes = QUICK_SIZES
    _, serial_series = _timed_sweep(sizes, 0, 1)
    series = benchmark(
        lambda: run_matching_series(
            ALGORITHM, HEURISTIC, sizes, budget=BUDGET, workers=2
        )
    )
    assert normalize_series(series) == normalize_series(serial_series)
    payload = measure_scaling(sizes, rounds=1)
    record_section(
        "Parallel fan-out scaling (serial vs 2/4 workers)",
        scaling_table(payload),
    )
    check_acceptance(payload)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes, one round"
    )
    parser.add_argument(
        "--json",
        default=str(Path(__file__).resolve().parent.parent / JSON_NAME),
        help="result JSON destination ('' to skip)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else HEADLINE_SIZES
    # min-of-2 rounds per arm: each sweep runs for seconds, so what is left
    # to damp is host-load bursts, not timer resolution
    json_path = Path(args.json) if args.json else None
    run_bench(sizes, rounds=1 if args.quick else 2, json_path=json_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
