"""Cache ablation — what the memoized search kernel buys (and that it is free).

Measures the Fig. 5 synthetic IDA* workload twice per schema size: once with
the full memoization layer (derived-view caches on the immutable
``Relation``/``Database`` values, the transposition table + state interning in
``MappingProblem``) and once with every cache off (``cache_successors=False``
inside :func:`~repro.relational.caching.view_caching_disabled` — the
pre-memoization kernel).  Reports wall-clock, states/sec and the speedup, plus
a side-by-side ``SearchStats`` dump showing the cache counters.

The h0 (blind) curves are the headline: IDA* re-expands states heavily there,
so the transposition table and warm per-state views pay off superlinearly.
The heuristic memo-cache predates the caching work and stays on in both arms.

Equivalence is checked, not assumed: for every algorithm x heuristic the two
arms must return the identical expression, status, solution length and
states-examined count.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_cache_ablation.py --quick

or through the bench suite: ``pytest benchmarks/bench_cache_ablation.py
--benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from typing import Iterable, Sequence

from repro.heuristics import HEURISTIC_NAMES
from repro.relational.caching import view_caching_disabled
from repro.search import ALGORITHM_NAMES, SearchConfig, discover_mapping
from repro.search.result import SearchResult
from repro.workloads import matching_pair

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section

ALGORITHM = "ida"
#: headline sizes — h0/IDA* re-expansion grows superlinearly over these
HEADLINE_SIZES = (4, 5, 6)
QUICK_SIZES = (3, 4)
EQUIVALENCE_SIZE = 3
BUDGET = 400_000


def _run(
    size: int, heuristic: str, algorithm: str, cache_on: bool
) -> SearchResult:
    """One discovery run with the memoization layer on or off."""
    pair = matching_pair(size)
    config = SearchConfig(cache_successors=cache_on, max_states=BUDGET)
    if cache_on:
        return discover_mapping(
            pair.source, pair.target, algorithm=algorithm,
            heuristic=heuristic, config=config,
        )
    with view_caching_disabled():
        return discover_mapping(
            pair.source, pair.target, algorithm=algorithm,
            heuristic=heuristic, config=config,
        )


def _timed(
    size: int, heuristic: str, cache_on: bool, rounds: int
) -> tuple[float, SearchResult]:
    """Min-of-rounds wall clock for one (size, arm) cell.

    Cyclic GC is collected then paused around each timed round (the
    standard pytest-benchmark ``disable_gc`` discipline) so collection
    pauses triggered by the other arm's garbage don't bleed into this one.
    """
    best = float("inf")
    result: SearchResult | None = None
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = _run(size, heuristic, ALGORITHM, cache_on)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    assert result is not None
    return best, result


def measure_ablation(
    sizes: Iterable[int], heuristic: str = "h0", rounds: int = 3
) -> list[dict]:
    """The ablation sweep: one row per schema size."""
    rows = []
    for size in sizes:
        on_secs, on_result = _timed(size, heuristic, True, rounds)
        off_secs, off_result = _timed(size, heuristic, False, rounds)
        if on_result.stats.states_examined != off_result.stats.states_examined:
            raise AssertionError(
                f"cache changed the search at size {size}: "
                f"{on_result.stats.states_examined} != "
                f"{off_result.stats.states_examined} states"
            )
        states = on_result.stats.states_examined
        rows.append(
            {
                "size": size,
                "states": states,
                "on_secs": on_secs,
                "off_secs": off_secs,
                "speedup": off_secs / on_secs if on_secs else float("inf"),
                "on_states_per_sec": states / on_secs if on_secs else 0.0,
                "off_states_per_sec": states / off_secs if off_secs else 0.0,
                "cache_hits": on_result.stats.cache_hits,
                "hit_rate": on_result.stats.cache_hit_rate,
                "on_stats": on_result.stats,
                "off_stats": off_result.stats,
            }
        )
    return rows


def ablation_table(rows: Sequence[dict], heuristic: str = "h0") -> str:
    """Render the sweep as an ASCII table."""
    headers = [
        "size", "states", "on (s)", "off (s)", "speedup",
        "on states/s", "off states/s", "hit rate",
    ]
    body = [
        [
            str(r["size"]),
            str(r["states"]),
            f"{r['on_secs']:.3f}",
            f"{r['off_secs']:.3f}",
            f"{r['speedup']:.2f}x",
            f"{r['on_states_per_sec']:,.0f}",
            f"{r['off_states_per_sec']:,.0f}",
            f"{r['hit_rate']:.2f}",
        ]
        for r in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [f"IDA*/{heuristic}, synthetic matching (cache on vs off)"]
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def verify_equivalence(
    size: int = EQUIVALENCE_SIZE,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
) -> list[str]:
    """Bit-identical check over every algorithm x heuristic combination.

    Returns the list of mismatch descriptions (empty = all equivalent).
    """
    mismatches = []
    for algorithm in algorithms:
        for heuristic in heuristics:
            on = _run(size, heuristic, algorithm, cache_on=True)
            off = _run(size, heuristic, algorithm, cache_on=False)
            on_expr = str(on.expression) if on.expression else None
            off_expr = str(off.expression) if off.expression else None
            on_len = len(on.expression) if on.expression else None
            off_len = len(off.expression) if off.expression else None
            if (
                on.status != off.status
                or on_expr != off_expr
                or on_len != off_len
                or on.stats.states_examined != off.stats.states_examined
            ):
                mismatches.append(
                    f"{algorithm}/{heuristic}: "
                    f"status {on.status}/{off.status}, "
                    f"states {on.stats.states_examined}/"
                    f"{off.stats.states_examined}, "
                    f"expr {on_expr!r} vs {off_expr!r}"
                )
    return mismatches


def _stats_section(rows: Sequence[dict]) -> str:
    from repro.experiments import stats_table

    largest = rows[-1]
    return stats_table(
        {
            "cache on": largest["on_stats"].as_dict(),
            "cache off": largest["off_stats"].as_dict(),
        }
    )


def _series_section(sizes: Sequence[int]) -> str:
    """Cache counters through the standard experiment-report path."""
    from repro.experiments import cache_summary_table, run_matching_series

    series = [
        run_matching_series(ALGORITHM, name, tuple(sizes), budget=BUDGET)
        for name in ("h0", "h1")
    ]
    return cache_summary_table(series)


# -- pytest-benchmark entry points -------------------------------------------


def test_cache_ablation_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: measure_ablation(HEADLINE_SIZES, rounds=2),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup_largest"] = rows[-1]["speedup"]
    record_section(
        "Cache ablation — IDA*/h0 synthetic matching (memoization on vs off)",
        ablation_table(rows)
        + "\n\nSearchStats at the largest size:\n"
        + _stats_section(rows)
        + "\n\nExperiment-report cache summary:\n"
        + _series_section(HEADLINE_SIZES),
    )
    # the transposition table + warm views must at least halve wall clock
    # on the re-expansion-heavy blind workload (measured: 2.1-2.5x)
    assert rows[-1]["speedup"] >= 1.5
    assert rows[-1]["cache_hits"] > 0


def test_cache_ablation_bit_identical(benchmark):
    mismatches = benchmark.pedantic(verify_equivalence, rounds=1, iterations=1)
    assert mismatches == [], "\n".join(mismatches)


# -- standalone CLI -----------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Ablate the memoized search kernel (cache on vs off)."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, one round — CI smoke mode",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="schema sizes to sweep (default: 4 5 6; quick: 3 4)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timing rounds per cell"
    )
    args = parser.parse_args(argv)
    if args.sizes and any(size < 1 for size in args.sizes):
        parser.error(f"--sizes must all be >= 1, got {args.sizes}")
    if args.rounds is not None and args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")
    sizes = tuple(args.sizes) if args.sizes else (
        QUICK_SIZES if args.quick else HEADLINE_SIZES
    )
    rounds = args.rounds if args.rounds else (1 if args.quick else 3)

    rows = measure_ablation(sizes, rounds=rounds)
    print(ablation_table(rows))
    print()
    print("SearchStats at the largest size:")
    print(_stats_section(rows))
    print()
    print("Experiment-report cache summary:")
    print(_series_section(sizes))
    print()

    heuristics = ("h0", "h1", "cosine") if args.quick else HEURISTIC_NAMES
    mismatches = verify_equivalence(heuristics=heuristics)
    if mismatches:
        print("EQUIVALENCE FAILURES:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print(
        f"equivalence: identical results across "
        f"{len(ALGORITHM_NAMES)} algorithms x {len(heuristics)} heuristics"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
