"""Tracing overhead — the NullSink guard must be (nearly) free.

The telemetry layer's contract is that *disabled* tracing costs one
attribute load and one branch per instrumentation site.  This bench puts a
number on that: the Fig. 5 synthetic IDA*/h0 workload (the PR 1 cache-
ablation headline) is timed per arm —

* ``baseline``  — no tracer at all (the shared NULL_TRACER default),
* ``nullsink``  — an explicit ``Tracer(NullSink())`` attached,
* ``progress``  — no tracer, but a live progress callback attached (the
  heartbeat throttle piggybacks on the existing limit-check cadence),
* ``memory``    — full event stream into a ``MemorySink``,
* ``jsonl``     — full event stream to a JSONL file,

with min-of-rounds wall clock and a bit-identity check (status, states
examined/generated, iterations must agree across all arms).  The
acceptance bar is **nullsink overhead < 3 %** of baseline; memory/jsonl
arms are informational (they pay for real event records).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --quick

``--strict`` exits non-zero if the nullsink arm exceeds the 3 % bar
(off by default: sub-ms workloads on shared CI boxes are noisy).
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from repro.obs import JsonlSink, MemorySink, NullSink, Tracer
from repro.search import SearchConfig, discover_mapping
from repro.search.result import SearchResult
from repro.workloads import matching_pair

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section

ALGORITHM = "ida"
HEURISTIC = "h0"
HEADLINE_SIZES = (4, 5)
QUICK_SIZES = (3, 4)
BUDGET = 400_000
#: acceptance bar for the disabled-tracing arm
MAX_NULLSINK_OVERHEAD = 0.03

#: arm name -> tracer factory (None = run without a tracer argument)
ARMS: tuple[str, ...] = ("baseline", "nullsink", "progress", "memory", "jsonl")


def _make_tracer(arm: str, tmp_dir: Path, size: int) -> Tracer | None:
    if arm in ("baseline", "progress"):
        return None
    if arm == "nullsink":
        return Tracer(NullSink())
    if arm == "memory":
        return Tracer(MemorySink())
    if arm == "jsonl":
        return Tracer(JsonlSink(tmp_dir / f"trace_n{size}.jsonl"))
    raise ValueError(f"unknown arm {arm!r}")


def _run(size: int, arm: str, tmp_dir: Path) -> SearchResult:
    pair = matching_pair(size)
    tracer = _make_tracer(arm, tmp_dir, size)
    progress = (lambda update: None) if arm == "progress" else None
    try:
        return discover_mapping(
            pair.source,
            pair.target,
            algorithm=ALGORITHM,
            heuristic=HEURISTIC,
            config=SearchConfig(max_states=BUDGET),
            simplify=False,
            tracer=tracer,
            progress=progress,
        )
    finally:
        if tracer is not None:
            tracer.close()


def _timed(
    size: int, arm: str, rounds: int, tmp_dir: Path
) -> tuple[float, SearchResult]:
    """Min-of-rounds wall clock (GC paused around each timed round)."""
    best = float("inf")
    result: SearchResult | None = None
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = _run(size, arm, tmp_dir)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    assert result is not None
    return best, result


def measure_overhead(sizes: Sequence[int], rounds: int) -> list[dict]:
    """One row per schema size: per-arm seconds + nullsink overhead."""
    rows: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        for size in sizes:
            timings: dict[str, float] = {}
            results: dict[str, SearchResult] = {}
            for arm in ARMS:
                timings[arm], results[arm] = _timed(size, arm, rounds, tmp_dir)
            base = results["baseline"].stats
            for arm in ARMS[1:]:
                stats = results[arm].stats
                if (
                    results[arm].status != results["baseline"].status
                    or stats.states_examined != base.states_examined
                    or stats.states_generated != base.states_generated
                    or stats.iterations != base.iterations
                ):
                    raise AssertionError(
                        f"tracing changed the search at size {size} ({arm}): "
                        f"{stats.states_examined} != {base.states_examined} states"
                    )
            baseline = timings["baseline"]
            rows.append(
                {
                    "size": size,
                    "states": base.states_examined,
                    "timings": timings,
                    "overheads": {
                        arm: (timings[arm] - baseline) / baseline
                        if baseline
                        else 0.0
                        for arm in ARMS[1:]
                    },
                }
            )
    return rows


def overhead_table(rows: Sequence[dict]) -> str:
    headers = ["size", "states", "baseline (s)"] + [
        f"{arm} (s / +%)" for arm in ARMS[1:]
    ]
    body = []
    for r in rows:
        cells = [str(r["size"]), str(r["states"]), f"{r['timings']['baseline']:.3f}"]
        for arm in ARMS[1:]:
            cells.append(
                f"{r['timings'][arm]:.3f} / {r['overheads'][arm]:+.1%}"
            )
        body.append(cells)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [f"IDA*/{HEURISTIC}, synthetic matching — tracing overhead by sink"]
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


# -- pytest-benchmark entry points -------------------------------------------


def test_trace_overhead_nullsink(benchmark):
    rows = benchmark.pedantic(
        lambda: measure_overhead(QUICK_SIZES, rounds=3),
        rounds=1,
        iterations=1,
    )
    worst = max(r["overheads"]["nullsink"] for r in rows)
    benchmark.extra_info["nullsink_worst_overhead"] = worst
    record_section(
        "Tracing overhead — IDA*/h0 synthetic matching by sink",
        overhead_table(rows),
    )
    # measure_overhead already raised if any arm changed the search; the
    # timing bar is tripled here because shared CI boxes are noisy — the
    # standalone headline run is where the 3 % acceptance number comes from
    assert worst < MAX_NULLSINK_OVERHEAD * 3


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes, 3 rounds")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--strict",
        action="store_true",
        help=f"fail if nullsink overhead exceeds {MAX_NULLSINK_OVERHEAD:.0%}",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else HEADLINE_SIZES
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 5)

    rows = measure_overhead(sizes, rounds)
    table = overhead_table(rows)
    record_section("trace overhead", table)
    print(table)

    worst = max(r["overheads"]["nullsink"] for r in rows)
    verdict = "PASS" if worst < MAX_NULLSINK_OVERHEAD else "FAIL"
    print(
        f"\nnullsink worst-case overhead: {worst:+.2%} "
        f"(bar {MAX_NULLSINK_OVERHEAD:.0%}) -> {verdict}"
    )
    print("bit-identity across all arms: OK")
    if args.strict and verdict == "FAIL":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
