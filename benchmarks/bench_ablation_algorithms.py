"""Ablation — A* / greedy best-first vs the paper's IDA* / RBFS.

The paper abandoned plain A* because "exponential memory use ... led to the
ineffectiveness of early implementations of TUPELO", accepting redundant
re-expansions in exchange for linear memory.  This bench quantifies that
trade-off on representative tasks: A* examines the fewest states (it never
re-expands), IDA*/RBFS re-examine states across iterations/backtracks, and
greedy is fast but need not return shortest expressions.

This is an extension beyond the paper's evaluation (flagged in DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro import SearchConfig, discover_mapping
from repro.experiments import ascii_table
from repro.workloads import bamm_domain, flights_a, flights_b, matching_pair

from _bench_utils import record_section

ALGORITHMS = ("ida", "rbfs", "astar", "greedy")
BUDGET = 100_000


def _tasks():
    pair = matching_pair(6)
    books = bamm_domain("Books").tasks[7]  # a harder multi-rename interface
    return [
        ("match-6", pair.source, pair.target),
        ("bamm-books-8", books.source, books.target),
        ("flights-B->A", flights_b(), flights_a()),
    ]


@pytest.fixture(scope="module")
def grid():
    results = {}
    for name, source, target in _tasks():
        for algorithm in ALGORITHMS:
            results[(name, algorithm)] = discover_mapping(
                source,
                target,
                algorithm=algorithm,
                heuristic="euclid_norm",
                config=SearchConfig(max_states=BUDGET),
                simplify=False,
            )
    return results


def test_ablation_algorithms(benchmark, grid):
    benchmark.pedantic(
        lambda: discover_mapping(
            flights_b(),
            flights_a(),
            algorithm="astar",
            heuristic="euclid_norm",
            simplify=False,
        ),
        rounds=3,
        iterations=1,
    )
    rows = []
    for name, _source, _target in _tasks():
        row: list[object] = [name]
        for algorithm in ALGORITHMS:
            result = grid[(name, algorithm)]
            row.append(
                result.states_examined if result.found else "cutoff"
            )
        rows.append(row)
    record_section(
        "Ablation — states examined per algorithm (heuristic: euclid_norm)",
        ascii_table(["task", *ALGORITHMS], rows),
    )
    for name, source, target in _tasks():
        # every algorithm solves every task correctly ...
        for algorithm in ALGORITHMS:
            result = grid[(name, algorithm)]
            assert result.found, (name, algorithm)
            assert result.expression.apply(source).contains(target)
    # ... and on the restructuring task (deep, wide space) A*'s global
    # best-first frontier pays off against the depth-first strategies.
    # NOTE: with the non-admissible scaled heuristics A* can also examine
    # *more* states than a lucky IDA descent (see match-6 in the table) —
    # which is itself a finding worth recording.
    flights = {a: grid[("flights-B->A", a)].states_examined for a in ALGORITHMS}
    assert flights["astar"] <= flights["ida"]
    assert flights["astar"] <= flights["rbfs"]


def test_ablation_expression_quality(benchmark, grid):
    """With h1 (admissible on pure-matching tasks) IDA* and A* return
    shortest expressions; greedy stays correct but may be longer."""
    from repro.workloads import matching_pair

    pair = matching_pair(5)

    def run(algorithm):
        return discover_mapping(
            pair.source,
            pair.target,
            algorithm=algorithm,
            heuristic="h1",
            config=SearchConfig(max_states=BUDGET),
            simplify=False,
        )

    results = benchmark.pedantic(
        lambda: {a: run(a) for a in ALGORITHMS}, rounds=1, iterations=1
    )
    assert len(results["astar"].expression) == 5
    assert len(results["ida"].expression) == 5
    greedy_expr = results["greedy"].expression
    assert greedy_expr.apply(pair.source).contains(pair.target)
    assert len(greedy_expr) >= 5
