"""Figure 9 — complex semantic mapping discovery (Experiment 3, §5.3).

States examined vs number of declared complex functions (1..8) on the
Inventory domain, under (a) IDA and (b) RBFS, for every heuristic.  The
paper groups curves that coincided: {h0, h2} and {h1, h3, cosine}; it also
reports that the Real Estate II results were "essentially the same", which
we spot-check.

Expected shape: h1-family linear in the function count; h0-family blows up
(factorially many λ orderings) and hits the cut-off around 4-6 functions.
"""

from __future__ import annotations

import pytest

from repro.experiments import ascii_chart, run_semantic_series, series_table
from repro.heuristics import HEURISTIC_NAMES
from repro.workloads import inventory_domain, real_estate_domain

from _bench_utils import bench_budget, record_section

COUNTS = tuple(range(1, 9))


@pytest.fixture(scope="module")
def inventory():
    return inventory_domain()


def _series(algorithm, inventory):
    # 30k is enough to show every curve's shape: the string/vector
    # heuristics that blow up do so well before 30k states, and the
    # set-based family stays in single digits (paper's log axis to 1e5)
    return {
        name: run_semantic_series(
            algorithm,
            name,
            inventory,
            counts=COUNTS,
            budget=min(bench_budget(), 30_000),
        )
        for name in HEURISTIC_NAMES
    }


@pytest.fixture(scope="module")
def ida_series(inventory):
    return _series("ida", inventory)


@pytest.fixture(scope="module")
def rbfs_series(inventory):
    return _series("rbfs", inventory)


def _check_shapes(series):
    # informed set-based heuristics walk straight to the goal: n+1 states
    assert series["h1"].states() == [n + 1 for n in range(1, 9)]
    assert series["h3"].states() == series["h1"].states()
    # blind search explodes and is cut off before reaching 8 functions
    h0 = series["h0"]
    assert not h0.points[-1].found or len(h0.points) < len(COUNTS)
    # the paper's coincidence: h2 behaves like h0 on this workload
    overlap = min(len(h0.points), len(series["h2"].points))
    assert series["h2"].states()[:overlap] == h0.states()[:overlap]


def test_fig9a_inventory_ida(benchmark, ida_series, inventory):
    benchmark.pedantic(
        lambda: run_semantic_series("ida", "h1", inventory, counts=(4,)),
        rounds=3,
        iterations=1,
    )
    record_section(
        "Fig. 9(a) — IDA, Inventory: states vs #complex functions",
        series_table(list(ida_series.values()), x_label="#functions")
        + "\n\n"
        + ascii_chart(list(ida_series.values()), x_label="#functions"),
    )
    _check_shapes(ida_series)


def test_fig9b_inventory_rbfs(benchmark, rbfs_series, inventory):
    benchmark.pedantic(
        lambda: run_semantic_series("rbfs", "h1", inventory, counts=(4,)),
        rounds=3,
        iterations=1,
    )
    record_section(
        "Fig. 9(b) — RBFS, Inventory: states vs #complex functions",
        series_table(list(rbfs_series.values()), x_label="#functions")
        + "\n\n"
        + ascii_chart(list(rbfs_series.values()), x_label="#functions"),
    )
    _check_shapes(rbfs_series)


def test_fig9_real_estate_consistent(benchmark):
    """'The performance on both domains was essentially the same' (§5.3)."""

    def run():
        return run_semantic_series(
            "rbfs", "h1", real_estate_domain(), counts=COUNTS
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    record_section(
        "Fig. 9 (check) — RBFS/h1 on Real Estate II",
        series_table([series], x_label="#functions"),
    )
    assert series.states() == [n + 1 for n in range(1, 9)]
