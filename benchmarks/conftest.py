"""Pytest hooks for the benches: print the regenerated figure tables.

``pytest benchmarks/ --benchmark-only`` then emits both pytest-benchmark's
timing table and the paper-comparison tables (states examined) registered
via :func:`_bench_utils.record_section`.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import sections  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    recorded = sections()
    if not recorded:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("TUPELO reproduction — regenerated tables & figures (states examined)")
    write("=" * 78)
    for title, body in recorded:
        write("")
        write(f"## {title}")
        for line in body.splitlines():
            write(line)
    write("")
