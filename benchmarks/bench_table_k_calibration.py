"""The §5 scaling-constants table — re-derived by calibration sweep.

The paper tunes k for the normalized Euclidean, cosine, and Levenshtein
heuristics per algorithm (IDA: 7/5/11, RBFS: 20/24/15).  This bench sweeps
a grid of candidate constants over a mixed calibration workload and reports
the best k per (algorithm, heuristic) next to the paper's values.

We do not expect to land on the paper's exact integers (their workloads
were the real BAMM/Archive data); the reproduced *structure* is that a
mid-range k clearly beats k=1 (which collapses every estimate toward 0 and
degenerates to near-blind search).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    SCALED_HEURISTICS,
    ascii_table,
    calibrate,
    calibration_tasks,
)
from repro.heuristics import PAPER_SCALING_CONSTANTS

from _bench_utils import record_section

GRID = tuple(range(1, 29, 3))  # 1, 4, 7, ..., 28
BUDGET = 10_000


@pytest.fixture(scope="module")
def tasks():
    return calibration_tasks(matching_sizes=(2, 3, 4, 5), bamm_samples=4)


@pytest.fixture(scope="module")
def calibrated(tasks):
    result: dict[str, dict[str, tuple[float, dict[float, int]]]] = {}
    for algorithm in ("ida", "rbfs"):
        result[algorithm] = {}
        for heuristic in SCALED_HEURISTICS:
            result[algorithm][heuristic] = calibrate(
                algorithm, heuristic, grid=GRID, tasks=tasks, budget=BUDGET
            )
    return result


def test_table_k_constants(benchmark, calibrated, tasks):
    benchmark.pedantic(
        lambda: calibrate("rbfs", "cosine", grid=(5, 20), tasks=tasks, budget=BUDGET),
        rounds=1,
        iterations=1,
    )
    rows = []
    for algorithm in ("ida", "rbfs"):
        for heuristic in SCALED_HEURISTICS:
            best, costs = calibrated[algorithm][heuristic]
            paper = PAPER_SCALING_CONSTANTS[algorithm][heuristic]
            rows.append(
                [
                    algorithm.upper(),
                    heuristic,
                    paper,
                    int(best),
                    costs[best],
                    costs[GRID[0]],
                ]
            )
    record_section(
        "§5 table — tuned scaling constants k (paper vs re-derived)",
        ascii_table(
            ["algo", "heuristic", "paper k", "our best k", "states@best", "states@k=1"],
            rows,
        ),
    )
    # structural check: the tuned k never does worse than the degenerate k=1
    for algorithm in ("ida", "rbfs"):
        for heuristic in SCALED_HEURISTICS:
            best, costs = calibrated[algorithm][heuristic]
            assert costs[best] <= costs[GRID[0]]


def test_k_sensitivity_curve(benchmark, tasks):
    """Full cost curve for one configuration, showing the k plateau."""

    def sweep():
        return calibrate("rbfs", "cosine", grid=GRID, tasks=tasks, budget=BUDGET)

    best, costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[int(k), costs[k]] for k in GRID]
    record_section(
        "k-sensitivity — RBFS/cosine total states over the calibration set",
        ascii_table(["k", "total states"], rows),
    )
    assert costs[best] == min(costs.values())
