"""Extension — the hybrid content+structure heuristic vs the paper's eight.

The paper's conclusion asks for a "good multi-purpose search heuristic"
measuring both content and structure.  We evaluate ``hybrid`` =
max(h1, k·(1−cosine)) against the best paper heuristics on all three
workload families: synthetic matching (Exp. 1), BAMM interfaces (Exp. 2),
and complex semantic mapping (Exp. 3), plus the Fig. 1 restructuring.
"""

from __future__ import annotations

import pytest

from repro import SearchConfig, discover_mapping
from repro.experiments import (
    ascii_table,
    average_states,
    run_bamm_domain,
    run_matching_series,
    run_semantic_series,
)
from repro.workloads import (
    bamm_domain,
    flights_a,
    flights_b,
    inventory_domain,
)

from _bench_utils import bamm_limit, record_section

CONTENDERS = ("h1", "cosine", "euclid_norm", "hybrid")
BUDGET = 60_000


@pytest.fixture(scope="module")
def scores():
    """{heuristic: {workload: states}} under RBFS."""
    books = bamm_domain("Books")
    autos = bamm_domain("Automobiles")
    inventory = inventory_domain()
    limit = bamm_limit()
    table: dict[str, dict[str, float]] = {}
    for heuristic in CONTENDERS:
        row: dict[str, float] = {}
        row["match-16"] = run_matching_series(
            "rbfs", heuristic, (16,), budget=BUDGET
        ).states()[0]
        row["bamm-books"] = average_states(
            run_bamm_domain("rbfs", heuristic, books, budget=BUDGET, limit=limit)
        )
        row["bamm-autos"] = average_states(
            run_bamm_domain("rbfs", heuristic, autos, budget=BUDGET, limit=limit)
        )
        row["semantic-8"] = run_semantic_series(
            "rbfs", heuristic, inventory, counts=(8,), budget=BUDGET
        ).states()[0]
        flights = discover_mapping(
            flights_b(),
            flights_a(),
            heuristic=heuristic,
            config=SearchConfig(max_states=BUDGET),
            simplify=False,
        )
        row["flights-B->A"] = (
            flights.states_examined if flights.found else float("inf")
        )
        table[heuristic] = row
    return table


def test_extension_hybrid(benchmark, scores):
    benchmark.pedantic(
        lambda: discover_mapping(
            flights_b(), flights_a(), heuristic="hybrid", simplify=False
        ),
        rounds=3,
        iterations=1,
    )
    workloads = list(next(iter(scores.values())))
    rows = [
        [heuristic, *(f"{scores[heuristic][w]:.0f}" for w in workloads)]
        for heuristic in CONTENDERS
    ]
    record_section(
        "Extension — hybrid heuristic vs the paper's best (RBFS, states)",
        ascii_table(["heuristic", *workloads], rows),
    )
    hybrid = scores["hybrid"]
    # multi-purpose: within a small factor of the best contender everywhere
    for workload in workloads:
        best = min(scores[h][workload] for h in CONTENDERS)
        assert hybrid[workload] <= max(10 * best, best + 50), workload
    # and strictly better than h1 on the rename-plateau workloads
    assert hybrid["bamm-autos"] <= scores["h1"]["bamm-autos"]
