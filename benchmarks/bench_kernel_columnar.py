"""Columnar hot-kernel — interned tokens, move caching, delta heuristics.

Measures the Fig. 5 synthetic IDA* workload across four kernel arms:

* ``seed``            — pre-memoization kernel: legacy text/value relation
  internals, derived-view caching off, no transposition table
  (``cache_successors=False``).
* ``memoized``        — the PR-1 memoized kernel: legacy internals with the
  derived-view caches and transposition table on.
* ``columnar``        — the columnar kernel: interned-token relations,
  schema/value-keyed proposal-move caching, view transplantation
  (incremental heuristics off).
* ``columnar_delta``  — columnar plus delta-incremental heuristic updates
  (identical to ``columnar`` under the blind h0 headline, where the delta
  machinery is bypassed; the h1 sweep shows it live).

Equivalence is checked, not assumed: every arm must examine the identical
number of states and return the identical expression at every cell, and the
bit-identity test sweeps every algorithm x heuristic at a small size.

Results land in ``BENCH_kernel_columnar.json`` at the repo root.  The
headline bars — columnar >= 5x over seed and >= 2x over memoized at
IDA*/h0 n=6 — are asserted from min-of-rounds wall clock; on a noisy
machine the sweep retries (fresh minima only improve) before failing.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_kernel_columnar.py --quick

or through the bench suite: ``pytest benchmarks/bench_kernel_columnar.py
--benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.heuristics import HEURISTIC_NAMES
from repro.relational import caching
from repro.search import ALGORITHM_NAMES, SearchConfig, discover_mapping
from repro.search.result import SearchResult
from repro.workloads import matching_pair

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section, write_bench_json

ALGORITHM = "ida"
HEADLINE_HEURISTIC = "h0"
#: headline sizes — the n=6 point carries the asserted bars
HEADLINE_SIZES = (4, 5, 6)
QUICK_SIZES = (3, 4)
EQUIVALENCE_SIZE = 3
BUDGET = 400_000
JSON_NAME = "BENCH_kernel_columnar.json"

#: asserted bars at the largest headline size (IDA*/h0, min-of-rounds)
TARGET_VS_SEED = 5.0
TARGET_VS_MEMOIZED = 2.0
#: re-measure attempts before declaring the bars unmet (minima only improve)
MAX_ATTEMPTS = 3

#: arm name -> (columnar kernel, view caching, cache_successors, delta)
ARMS: dict[str, tuple[bool, bool, bool, bool]] = {
    "seed": (False, False, False, False),
    "memoized": (False, True, True, False),
    "columnar": (True, True, True, False),
    "columnar_delta": (True, True, True, True),
}


def _run(size: int, heuristic: str, algorithm: str, arm: str) -> SearchResult:
    """One discovery run under the named kernel arm's switches."""
    columnar, views, cache_succ, delta = ARMS[arm]
    config = SearchConfig(cache_successors=cache_succ, max_states=BUDGET)
    pair = matching_pair(size)
    previous = (
        caching.columnar_kernel_enabled(),
        caching.view_caching_enabled(),
        caching.incremental_heuristics_enabled(),
    )
    caching.set_columnar_kernel(columnar)
    caching.set_view_caching(views)
    caching.set_incremental_heuristics(delta)
    try:
        return discover_mapping(
            pair.source, pair.target, algorithm=algorithm,
            heuristic=heuristic, config=config,
        )
    finally:
        caching.set_columnar_kernel(previous[0])
        caching.set_view_caching(previous[1])
        caching.set_incremental_heuristics(previous[2])


def _timed(
    size: int, heuristic: str, arm: str, rounds: int
) -> tuple[float, SearchResult]:
    """Min-of-rounds wall clock for one (size, arm) cell.

    Cyclic GC is collected then paused around each timed round (the
    standard pytest-benchmark ``disable_gc`` discipline) so collection
    pauses triggered by another arm's garbage don't bleed into this one.
    """
    best = float("inf")
    result: SearchResult | None = None
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = _run(size, heuristic, ALGORITHM, arm)
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    assert result is not None
    return best, result


def measure_arms(
    sizes: Sequence[int], heuristic: str = HEADLINE_HEURISTIC, rounds: int = 3
) -> list[dict]:
    """The four-arm sweep: one row per schema size, identity asserted."""
    rows = []
    for size in sizes:
        row: dict = {"size": size, "secs": {}, "states": None}
        reference: SearchResult | None = None
        for arm in ARMS:
            secs, result = _timed(size, heuristic, arm, rounds)
            row["secs"][arm] = secs
            if reference is None:
                reference = result
                row["states"] = result.stats.states_examined
                row["expression"] = (
                    str(result.expression) if result.expression else None
                )
            else:
                _assert_identical(size, arm, reference, result)
        col = row["secs"]["columnar"]
        row["vs_seed"] = row["secs"]["seed"] / col if col else float("inf")
        row["vs_memoized"] = (
            row["secs"]["memoized"] / col if col else float("inf")
        )
        rows.append(row)
    return rows


def _assert_identical(
    size: int, arm: str, reference: SearchResult, result: SearchResult
) -> None:
    """The kernel arms must not change the search, only its speed."""
    ref_expr = str(reference.expression) if reference.expression else None
    arm_expr = str(result.expression) if result.expression else None
    if (
        result.status != reference.status
        or result.stats.states_examined != reference.stats.states_examined
        or arm_expr != ref_expr
    ):
        raise AssertionError(
            f"kernel arm {arm!r} changed the search at size {size}: "
            f"status {result.status}/{reference.status}, states "
            f"{result.stats.states_examined}/{reference.stats.states_examined}, "
            f"expr {arm_expr!r} vs {ref_expr!r}"
        )


def measure_headline(rounds: int = 3) -> tuple[list[dict], dict]:
    """The asserted sweep: retry on a noisy box, minima only improve."""
    rows = measure_arms(HEADLINE_SIZES, rounds=rounds)
    for _ in range(MAX_ATTEMPTS - 1):
        head = rows[-1]
        if (
            head["vs_seed"] >= TARGET_VS_SEED
            and head["vs_memoized"] >= TARGET_VS_MEMOIZED
        ):
            break
        retry = measure_arms(HEADLINE_SIZES[-1:], rounds=rounds)[0]
        for arm, secs in retry["secs"].items():
            head["secs"][arm] = min(head["secs"][arm], secs)
        seed = head["secs"]["seed"]
        memo = head["secs"]["memoized"]
        col = head["secs"]["columnar"]
        head["vs_seed"] = seed / col if col else float("inf")
        head["vs_memoized"] = memo / col if col else float("inf")
    head = rows[-1]
    payload = {
        "workload": {
            "algorithm": ALGORITHM,
            "heuristic": HEADLINE_HEURISTIC,
            "sizes": list(HEADLINE_SIZES),
            "budget": BUDGET,
            "rounds": rounds,
        },
        "arms": {
            arm: {
                "columnar_kernel": ARMS[arm][0],
                "view_caching": ARMS[arm][1],
                "cache_successors": ARMS[arm][2],
                "incremental_heuristics": ARMS[arm][3],
                "headline_secs": head["secs"][arm],
            }
            for arm in ARMS
        },
        "rows": [
            {
                "size": r["size"],
                "states": r["states"],
                "secs": dict(r["secs"]),
                "vs_seed": r["vs_seed"],
                "vs_memoized": r["vs_memoized"],
            }
            for r in rows
        ],
        "headline": {
            "size": head["size"],
            "states": head["states"],
            "vs_seed": head["vs_seed"],
            "vs_memoized": head["vs_memoized"],
        },
        "targets": {
            "vs_seed": TARGET_VS_SEED,
            "vs_memoized": TARGET_VS_MEMOIZED,
        },
        "bit_identical": True,
        "speedup_asserted": (
            head["vs_seed"] >= TARGET_VS_SEED
            and head["vs_memoized"] >= TARGET_VS_MEMOIZED
        ),
    }
    return rows, payload


def arms_table(rows: Sequence[dict], heuristic: str = HEADLINE_HEURISTIC) -> str:
    """Render the sweep as an ASCII table."""
    headers = [
        "size", "states", "seed (s)", "memoized (s)", "columnar (s)",
        "delta (s)", "vs seed", "vs memo",
    ]
    body = [
        [
            str(r["size"]),
            str(r["states"]),
            f"{r['secs']['seed']:.3f}",
            f"{r['secs']['memoized']:.3f}",
            f"{r['secs']['columnar']:.3f}",
            f"{r['secs']['columnar_delta']:.3f}",
            f"{r['vs_seed']:.2f}x",
            f"{r['vs_memoized']:.2f}x",
        ]
        for r in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]

    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [f"IDA*/{heuristic}, synthetic matching (kernel arms)"]
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def verify_equivalence(
    size: int = EQUIVALENCE_SIZE,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
) -> list[str]:
    """Bit-identical check over every algorithm x heuristic x arm.

    Returns the list of mismatch descriptions (empty = all equivalent).
    """
    mismatches = []
    for algorithm in algorithms:
        for heuristic in heuristics:
            results = {
                arm: _run(size, heuristic, algorithm, arm) for arm in ARMS
            }
            reference = results["seed"]
            for arm, result in results.items():
                try:
                    _assert_identical(size, arm, reference, result)
                except AssertionError as exc:
                    mismatches.append(f"{algorithm}/{heuristic}: {exc}")
    return mismatches


# -- pytest-benchmark entry points -------------------------------------------


def test_kernel_columnar_speedup(benchmark):
    rows, payload = benchmark.pedantic(
        lambda: measure_headline(rounds=2), rounds=1, iterations=1
    )
    head = payload["headline"]
    benchmark.extra_info["vs_seed"] = head["vs_seed"]
    benchmark.extra_info["vs_memoized"] = head["vs_memoized"]
    record_section(
        "Columnar kernel — IDA*/h0 synthetic matching (four kernel arms)",
        arms_table(rows)
        + f"\n\nheadline n={head['size']}: {head['vs_seed']:.2f}x vs seed, "
        f"{head['vs_memoized']:.2f}x vs memoized "
        f"(targets {TARGET_VS_SEED:.0f}x / {TARGET_VS_MEMOIZED:.0f}x)",
    )
    write_bench_json(Path(__file__).resolve().parent.parent / JSON_NAME, payload)
    assert head["vs_seed"] >= TARGET_VS_SEED, (
        f"columnar kernel only {head['vs_seed']:.2f}x over the seed kernel "
        f"(target {TARGET_VS_SEED}x)"
    )
    assert head["vs_memoized"] >= TARGET_VS_MEMOIZED, (
        f"columnar kernel only {head['vs_memoized']:.2f}x over the memoized "
        f"kernel (target {TARGET_VS_MEMOIZED}x)"
    )


def test_kernel_columnar_bit_identical(benchmark):
    mismatches = benchmark.pedantic(verify_equivalence, rounds=1, iterations=1)
    assert mismatches == [], "\n".join(mismatches)


# -- standalone CLI -----------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the columnar hot kernel against the legacy arms."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, one round, no JSON — CI smoke mode",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="schema sizes to sweep (default: 4 5 6; quick: 3 4)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timing rounds per cell"
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help=f"skip writing {JSON_NAME}",
    )
    args = parser.parse_args(argv)
    if args.sizes and any(size < 1 for size in args.sizes):
        parser.error(f"--sizes must all be >= 1, got {args.sizes}")
    if args.rounds is not None and args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")
    rounds = args.rounds if args.rounds else (1 if args.quick else 3)

    if args.quick or args.sizes:
        sizes = tuple(args.sizes) if args.sizes else QUICK_SIZES
        rows = measure_arms(sizes, rounds=rounds)
        payload = None
    else:
        rows, payload = measure_headline(rounds=rounds)
    print(arms_table(rows))
    print()

    heuristics = ("h0", "h1", "cosine") if args.quick else HEURISTIC_NAMES
    mismatches = verify_equivalence(heuristics=heuristics)
    if mismatches:
        print("EQUIVALENCE FAILURES:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print(
        f"equivalence: identical results across "
        f"{len(ALGORITHM_NAMES)} algorithms x {len(heuristics)} heuristics "
        f"x {len(ARMS)} kernel arms"
    )

    if payload is not None:
        head = payload["headline"]
        print(
            f"headline n={head['size']}: {head['vs_seed']:.2f}x vs seed, "
            f"{head['vs_memoized']:.2f}x vs memoized "
            f"(targets {TARGET_VS_SEED:.0f}x / {TARGET_VS_MEMOIZED:.0f}x)"
        )
        if not args.no_json:
            path = write_bench_json(
                Path(__file__).resolve().parent.parent / JSON_NAME, payload
            )
            print(f"wrote {path}")
        if not payload["speedup_asserted"]:
            print("SPEEDUP TARGETS NOT MET")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
