"""SQL execution backends — sqlite vs the minisql reference interpreter.

Scales the paper's Fig. 1 FlightsB schema to a ≥100k-row ``Prices``
instance and pushes the Example 2 restructuring pipeline (↑, π̄, π̄, µ,
ρatt, ρrel) through every available execution backend.  Two things are
measured, one thing is asserted twice:

* **bit-identity** — every backend's result must equal replaying the
  mapping through the in-memory algebra (``==`` on ``Database``), at
  every size.  The speedup claim is meaningless if an engine cheats.
* **speedup** — min-of-rounds execute-phase wall clock; the headline bar
  is sqlite ≥ 5x over minisql at the largest size.  duckdb joins the
  sweep automatically when installed.

Results land in ``BENCH_sql_backends.json`` at the repo root and flow
through ``tools/bench_history.py`` when ``REPRO_BENCH_HISTORY`` is set.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_sql_backends.py --quick

or through the bench suite: ``pytest benchmarks/bench_sql_backends.py
--benchmark-only``.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.backends import available_backends, execute_mapping, get_backend
from repro.fira import (
    DropAttribute,
    MappingExpression,
    Merge,
    Promote,
    RenameAttribute,
    RenameRelation,
)
from repro.relational import Database, Relation

if __package__ is None and not __name__.startswith("benchmarks"):
    # running as a script: make _bench_utils importable
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _bench_utils import record_section, write_bench_json

#: (carriers, routes) cells — carriers * routes = source rows
HEADLINE_SIZES = ((1_000, 10), (10_000, 10))
QUICK_SIZES = ((200, 4),)
JSON_NAME = "BENCH_sql_backends.json"

#: asserted bar at the largest size: sqlite execute ≥ 5x minisql execute
TARGET_SQLITE_VS_MINISQL = 5.0
#: re-measure attempts before declaring the bar unmet (minima only improve)
MAX_ATTEMPTS = 3

BASELINE = "minisql"
HEADLINE_BACKEND = "sqlite"


def prices_instance(carriers: int, routes: int) -> Database:
    """A FlightsB-style ``Prices`` table scaled to carriers x routes rows."""
    rows = [
        (
            f"C{c:05d}",
            f"R{r:02d}",
            100 + (c * 7 + r * 13) % 400,
            10 + c % 25,
        )
        for c in range(carriers)
        for r in range(routes)
    ]
    return Database.single(
        Relation("Prices", ("Carrier", "Route", "Cost", "AgentFee"), rows)
    )


def restructuring_expression() -> MappingExpression:
    """Example 2's FlightsB → FlightsA pipeline (routes become columns)."""
    return MappingExpression(
        [
            Promote("Prices", "Route", "Cost"),
            DropAttribute("Prices", "Route"),
            DropAttribute("Prices", "Cost"),
            Merge("Prices", "Carrier"),
            RenameAttribute("Prices", "AgentFee", "Fee"),
            RenameRelation("Prices", "Flights"),
        ]
    )


def backend_names_in_sweep() -> tuple[str, ...]:
    """Every available backend, minisql (the baseline) first."""
    names = sorted(b.name for b in available_backends())
    names.remove(BASELINE)
    return (BASELINE, *names)


def _timed_execute(name: str, expression, source, rounds: int) -> dict:
    """Min-of-rounds execute/compile seconds for one backend cell.

    Cyclic GC is collected then paused around each timed round so another
    backend's garbage doesn't bleed into this one's wall clock.
    """
    best_execute = float("inf")
    best_compile = float("inf")
    database = None
    statements = 0
    gc_was_enabled = gc.isenabled()
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            result = execute_mapping(expression, source, backend=name)
        finally:
            if gc_was_enabled:
                gc.enable()
        best_execute = min(best_execute, result.execute_seconds)
        best_compile = min(best_compile, result.compile_seconds)
        database = result.database
        statements = result.script.statement_count
    return {
        "execute_secs": best_execute,
        "compile_secs": best_compile,
        "statements": statements,
        "database": database,
    }


def measure_backends(
    sizes: Sequence[tuple[int, int]], rounds: int = 2
) -> list[dict]:
    """The sweep: one row per instance size, bit-identity asserted."""
    expression = restructuring_expression()
    names = backend_names_in_sweep()
    rows = []
    for carriers, routes in sizes:
        source = prices_instance(carriers, routes)
        start = time.perf_counter()
        algebra = expression.apply(source)
        algebra_secs = time.perf_counter() - start
        row: dict = {
            "carriers": carriers,
            "routes": routes,
            "rows": carriers * routes,
            "algebra_secs": algebra_secs,
            "backends": {},
        }
        for name in names:
            cell = _timed_execute(name, expression, source, rounds)
            if cell["database"] != algebra:
                raise AssertionError(
                    f"backend {name} diverged from the in-memory algebra "
                    f"at {row['rows']} rows — speedups are void"
                )
            row["backends"][name] = {
                "execute_secs": cell["execute_secs"],
                "compile_secs": cell["compile_secs"],
                "statements": cell["statements"],
            }
        base = row["backends"][BASELINE]["execute_secs"]
        for name in names:
            secs = row["backends"][name]["execute_secs"]
            row["backends"][name]["vs_minisql"] = (
                base / secs if secs else float("inf")
            )
        rows.append(row)
    return rows


def measure_headline(rounds: int = 2) -> tuple[list[dict], dict]:
    """The asserted sweep: retry on a noisy box, minima only improve."""
    rows = measure_backends(HEADLINE_SIZES, rounds=rounds)
    for _ in range(MAX_ATTEMPTS - 1):
        head = rows[-1]
        if (
            head["backends"][HEADLINE_BACKEND]["vs_minisql"]
            >= TARGET_SQLITE_VS_MINISQL
        ):
            break
        retry = measure_backends(HEADLINE_SIZES[-1:], rounds=rounds)[0]
        for name, cell in retry["backends"].items():
            mine = head["backends"][name]
            mine["execute_secs"] = min(
                mine["execute_secs"], cell["execute_secs"]
            )
            mine["compile_secs"] = min(
                mine["compile_secs"], cell["compile_secs"]
            )
        base = head["backends"][BASELINE]["execute_secs"]
        for cell in head["backends"].values():
            cell["vs_minisql"] = (
                base / cell["execute_secs"]
                if cell["execute_secs"]
                else float("inf")
            )
    head = rows[-1]
    speedup = head["backends"][HEADLINE_BACKEND]["vs_minisql"]
    payload = {
        "workload": {
            "schema": "FlightsB Prices (Carrier, Route, Cost, AgentFee)",
            "expression": str(restructuring_expression()),
            "sizes": [
                {"carriers": c, "routes": r, "rows": c * r}
                for c, r in HEADLINE_SIZES
            ],
            "rounds": rounds,
        },
        "backends": list(backend_names_in_sweep()),
        "rows": [
            {
                "rows": r["rows"],
                "algebra_secs": r["algebra_secs"],
                "backends": {
                    name: dict(cell) for name, cell in r["backends"].items()
                },
            }
            for r in rows
        ],
        "headline": {
            "rows": head["rows"],
            "sqlite_vs_minisql": speedup,
            "minisql_execute_secs": head["backends"][BASELINE][
                "execute_secs"
            ],
            "sqlite_execute_secs": head["backends"][HEADLINE_BACKEND][
                "execute_secs"
            ],
        },
        "targets": {"sqlite_vs_minisql": TARGET_SQLITE_VS_MINISQL},
        "bit_identical": True,
        "speedup_asserted": speedup >= TARGET_SQLITE_VS_MINISQL,
    }
    return rows, payload


def backends_table(rows: Sequence[dict]) -> str:
    """Render the sweep as an ASCII table."""
    names = backend_names_in_sweep()
    headers = ["rows", "algebra (s)"]
    for name in names:
        headers.extend([f"{name} (s)", "vs mini"])
    body = []
    for r in rows:
        cells = [str(r["rows"]), f"{r['algebra_secs']:.3f}"]
        for name in names:
            cell = r["backends"][name]
            cells.append(f"{cell['execute_secs']:.3f}")
            cells.append(f"{cell['vs_minisql']:.1f}x")
        body.append(cells)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]

    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = ["FlightsB → FlightsA restructuring, execute phase per backend"]
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


# -- pytest-benchmark entry points -------------------------------------------


def test_sql_backend_speedup(benchmark):
    rows, payload = benchmark.pedantic(
        lambda: measure_headline(rounds=1), rounds=1, iterations=1
    )
    head = payload["headline"]
    benchmark.extra_info["sqlite_vs_minisql"] = head["sqlite_vs_minisql"]
    record_section(
        "SQL backends — FlightsB restructuring at scale (execute phase)",
        backends_table(rows)
        + f"\n\nheadline {head['rows']} rows: "
        f"{head['sqlite_vs_minisql']:.1f}x sqlite vs minisql "
        f"(target {TARGET_SQLITE_VS_MINISQL:.0f}x)",
    )
    write_bench_json(Path(__file__).resolve().parent.parent / JSON_NAME, payload)
    assert head["sqlite_vs_minisql"] >= TARGET_SQLITE_VS_MINISQL, (
        f"sqlite only {head['sqlite_vs_minisql']:.1f}x over minisql "
        f"(target {TARGET_SQLITE_VS_MINISQL}x)"
    )


def test_sql_backend_bit_identical(benchmark):
    # small instance, every backend, identity enforced inside the sweep
    rows = benchmark.pedantic(
        lambda: measure_backends(QUICK_SIZES, rounds=1), rounds=1, iterations=1
    )
    assert rows, "sweep produced no rows"


# -- standalone CLI -----------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure SQL execution backends against minisql."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instance, one round, no JSON — CI smoke mode",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timing rounds per cell"
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help=f"skip writing {JSON_NAME}",
    )
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")
    rounds = args.rounds if args.rounds else (1 if args.quick else 2)

    from repro.backends import backend_names

    for name in backend_names():
        reason = get_backend(name).availability()
        if reason is not None:  # pragma: no cover - env-dependent
            print(f"note: skipping {name}: {reason}")

    if args.quick:
        rows = measure_backends(QUICK_SIZES, rounds=rounds)
        payload = None
    else:
        rows, payload = measure_headline(rounds=rounds)
    print(backends_table(rows))
    print()
    print("bit-identity: every backend matched the in-memory algebra")

    if payload is not None:
        head = payload["headline"]
        print(
            f"headline {head['rows']} rows: "
            f"{head['sqlite_vs_minisql']:.1f}x sqlite vs minisql "
            f"(target {TARGET_SQLITE_VS_MINISQL:.0f}x)"
        )
        if not args.no_json:
            path = write_bench_json(
                Path(__file__).resolve().parent.parent / JSON_NAME, payload
            )
            print(f"wrote {path}")
        if not payload["speedup_asserted"]:
            print("SPEEDUP TARGET NOT MET", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
